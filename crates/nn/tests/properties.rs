//! Property-based tests of the tensor-op algebra.

use proptest::prelude::*;
use seaice_nn::ops::conv2d::Conv2dShape;
use seaice_nn::ops::{
    concat_channels, concat_channels_backward, conv2d, matmul, maxpool2x2, relu, upsample2x,
    upsample2x_backward,
};
use seaice_nn::Tensor;

fn arb_tensor(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    proptest::collection::vec(-10.0f32..10.0, len)
        .prop_map(move |data| Tensor::from_vec(&shape, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_linear_in_lhs(
        a in arb_tensor(vec![3, 4]),
        b in arb_tensor(vec![3, 4]),
        c in arb_tensor(vec![4, 2]),
        k in -3.0f32..3.0,
    ) {
        // (a + k·b) · c == a·c + k·(b·c)
        let mut akb = a.clone();
        for (x, y) in akb.as_mut_slice().iter_mut().zip(b.as_slice()) {
            *x += k * y;
        }
        let lhs = matmul(&akb, &c);
        let ac = matmul(&a, &c);
        let bc = matmul(&b, &c);
        for i in 0..lhs.len() {
            let rhs = ac.as_slice()[i] + k * bc.as_slice()[i];
            prop_assert!((lhs.as_slice()[i] - rhs).abs() < 1e-2,
                "linearity violated at {i}: {} vs {rhs}", lhs.as_slice()[i]);
        }
    }

    #[test]
    fn matmul_identity_is_neutral(a in arb_tensor(vec![5, 5])) {
        let mut id = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            id.as_mut_slice()[i * 5 + i] = 1.0;
        }
        let out = matmul(&a, &id);
        for (x, y) in out.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn conv_is_translation_equivariant_in_batch(x in arb_tensor(vec![2, 1, 4, 4])) {
        // Convolving a batch equals convolving each item separately.
        let shape = Conv2dShape { in_channels: 1, out_channels: 2, kernel: 3, stride: 1, pad: 1 };
        let w = seaice_nn::init::uniform(&[2, 9], -1.0, 1.0, 7);
        let b = seaice_nn::init::uniform(&[2], -1.0, 1.0, 8);
        let whole = conv2d(&x, &w, &b, &shape);
        for item in 0..2 {
            let single = Tensor::from_vec(&[1, 1, 4, 4], x.batch_item(item).to_vec());
            let out = conv2d(&single, &w, &b, &shape);
            prop_assert_eq!(out.as_slice(), whole.batch_item(item));
        }
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(x in arb_tensor(vec![2, 2, 4, 4])) {
        let y = relu(&x);
        prop_assert!(y.as_slice().iter().all(|&v| v >= 0.0));
        prop_assert_eq!(relu(&y), y.clone());
    }

    #[test]
    fn maxpool_dominates_inputs(x in arb_tensor(vec![1, 2, 4, 4])) {
        let (y, argmax) = maxpool2x2(&x);
        // Every output equals the input at its argmax and dominates its
        // 2x2 window (checked via argmax validity).
        for (o, &idx) in y.as_slice().iter().zip(&argmax) {
            prop_assert_eq!(*o, x.as_slice()[idx]);
        }
        // Pooling a constant tensor returns the constant.
        let c = Tensor::full(&[1, 1, 4, 4], 3.25);
        let (yc, _) = maxpool2x2(&c);
        prop_assert!(yc.as_slice().iter().all(|&v| v == 3.25));
    }

    #[test]
    fn upsample_then_downsample_scales_by_four(x in arb_tensor(vec![1, 2, 3, 3])) {
        let down = upsample2x_backward(&upsample2x(&x));
        for (a, b) in down.as_slice().iter().zip(x.as_slice()) {
            prop_assert!((a - 4.0 * b).abs() < 1e-4);
        }
    }

    #[test]
    fn concat_roundtrip(a in arb_tensor(vec![2, 2, 2, 2]), b in arb_tensor(vec![2, 3, 2, 2])) {
        let cat = concat_channels(&a, &b);
        prop_assert_eq!(cat.shape(), &[2, 5, 2, 2]);
        let (ga, gb) = concat_channels_backward(&cat, 2, 3);
        prop_assert_eq!(ga, a);
        prop_assert_eq!(gb, b);
    }

    #[test]
    fn softmax_ce_loss_is_nonnegative_and_grad_bounded(
        logits in arb_tensor(vec![1, 3, 2, 2]),
        t0 in 0u8..3, t1 in 0u8..3, t2 in 0u8..3, t3 in 0u8..3,
    ) {
        let out = seaice_nn::loss::softmax_cross_entropy(&logits, &[t0, t1, t2, t3]);
        prop_assert!(out.loss >= 0.0);
        // |softmax − onehot| ≤ 1, divided by pixel count 4.
        prop_assert!(out.grad.as_slice().iter().all(|&g| g.abs() <= 0.2500001));
        prop_assert!(out.predictions.iter().all(|&p| p < 3));
    }
}
