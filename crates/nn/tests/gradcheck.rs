//! Finite-difference gradient checks for every differentiable op and for
//! a small composed network — the ground truth that the hand-written
//! backward passes are correct.

use seaice_nn::init::uniform;
use seaice_nn::layers::{Conv2d, Layer, MaxPool2x2, Relu, Upsample2x};
use seaice_nn::loss::softmax_cross_entropy;
use seaice_nn::ops::conv2d::Conv2dShape;
use seaice_nn::ops::{concat_channels, concat_channels_backward};
use seaice_nn::Tensor;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Central finite difference of `f` w.r.t. element `i` of `x`.
fn fd(x: &Tensor, i: usize, f: &mut dyn FnMut(&Tensor) -> f32) -> f32 {
    let mut plus = x.clone();
    plus.as_mut_slice()[i] += EPS;
    let mut minus = x.clone();
    minus.as_mut_slice()[i] -= EPS;
    (f(&plus) - f(&minus)) / (2.0 * EPS)
}

/// Checks `analytic` against finite differences of `f` for a subset of
/// elements (stride keeps runtime sane on bigger tensors).
fn check_grad(
    x: &Tensor,
    analytic: &Tensor,
    stride: usize,
    f: &mut dyn FnMut(&Tensor) -> f32,
    what: &str,
) {
    assert_eq!(x.shape(), analytic.shape());
    for i in (0..x.len()).step_by(stride.max(1)) {
        let numeric = fd(x, i, f);
        let a = analytic.as_slice()[i];
        assert!(
            (numeric - a).abs() < TOL * (1.0 + numeric.abs().max(a.abs())),
            "{what}: grad[{i}] numeric {numeric} vs analytic {a}"
        );
    }
}

/// Loss functional used by all checks: softmax-CE of the tensor against
/// fixed targets, after an optional preceding computation.
fn ce_loss(logits: &Tensor, targets: &[u8]) -> f32 {
    softmax_cross_entropy(logits, targets).loss
}

#[test]
fn conv2d_input_gradient() {
    let shape = Conv2dShape {
        in_channels: 2,
        out_channels: 3,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let mut conv = Conv2d::new(shape, 1);
    let x = uniform(&[1, 2, 4, 4], -1.0, 1.0, 2);
    let targets: Vec<u8> = (0..16).map(|i| (i % 3) as u8).collect();

    let y = conv.forward(&x, true);
    let lo = softmax_cross_entropy(&y, &targets);
    let dx = conv.backward(&lo.grad);

    let mut f = |xt: &Tensor| {
        let mut c = Conv2d::new(shape, 1); // same seed → same weights
        let y = c.forward(xt, true);
        ce_loss(&y, &targets)
    };
    check_grad(&x, &dx, 3, &mut f, "conv2d input");
}

#[test]
fn conv2d_weight_gradient() {
    let shape = Conv2dShape {
        in_channels: 1,
        out_channels: 3,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let x = uniform(&[1, 1, 4, 4], -1.0, 1.0, 3);
    let w0 = uniform(&[3, 9], -0.5, 0.5, 4);
    let b0 = uniform(&[3], -0.1, 0.1, 5);
    let targets: Vec<u8> = (0..16).map(|i| (i % 3) as u8).collect();

    let y = seaice_nn::ops::conv2d(&x, &w0, &b0, &shape);
    let lo = softmax_cross_entropy(&y, &targets);
    let (_, dw, db) = seaice_nn::ops::conv2d_backward(&x, &w0, &lo.grad, &shape);

    let mut fw = |wt: &Tensor| {
        let y = seaice_nn::ops::conv2d(&x, wt, &b0, &shape);
        ce_loss(&y, &targets)
    };
    check_grad(&w0, &dw, 2, &mut fw, "conv2d weight");

    let mut fb = |bt: &Tensor| {
        let y = seaice_nn::ops::conv2d(&x, &w0, bt, &shape);
        ce_loss(&y, &targets)
    };
    check_grad(&b0, &db, 1, &mut fb, "conv2d bias");
}

#[test]
fn conv_transpose2d_gradients() {
    use seaice_nn::ops::convtranspose::{
        conv_transpose2d, conv_transpose2d_backward, ConvTranspose2dShape,
    };
    let shape = ConvTranspose2dShape::unet_upconv(2, 3);
    let x = uniform(&[1, 2, 2, 2], -1.0, 1.0, 31);
    let w0 = uniform(&[2, 3 * 4], -0.5, 0.5, 32);
    let b0 = uniform(&[3], -0.1, 0.1, 33);
    let targets: Vec<u8> = (0..16).map(|i| (i % 3) as u8).collect();

    let y = conv_transpose2d(&x, &w0, &b0, &shape);
    let lo = softmax_cross_entropy(&y, &targets);
    let (dx, dw, db) = conv_transpose2d_backward(&x, &w0, &lo.grad, &shape);

    let mut fx = |xt: &Tensor| ce_loss(&conv_transpose2d(xt, &w0, &b0, &shape), &targets);
    check_grad(&x, &dx, 1, &mut fx, "conv_transpose2d input");
    let mut fw = |wt: &Tensor| ce_loss(&conv_transpose2d(&x, wt, &b0, &shape), &targets);
    check_grad(&w0, &dw, 2, &mut fw, "conv_transpose2d weight");
    let mut fb = |bt: &Tensor| ce_loss(&conv_transpose2d(&x, &w0, bt, &shape), &targets);
    check_grad(&b0, &db, 1, &mut fb, "conv_transpose2d bias");
}

#[test]
fn maxpool_gradient() {
    // Use inputs with distinct values so the argmax is FD-stable.
    let x = Tensor::from_vec(
        &[1, 3, 4, 4],
        (0..48).map(|i| ((i * 37) % 101) as f32 / 10.0).collect(),
    );
    let targets: Vec<u8> = (0..4).map(|i| (i % 3) as u8).collect();
    let mut pool = MaxPool2x2::default();
    let y = pool.forward(&x, true);
    let lo = softmax_cross_entropy(&y, &targets);
    let dx = pool.backward(&lo.grad);

    let mut f = |xt: &Tensor| {
        let mut p = MaxPool2x2::default();
        let y = p.forward(xt, true);
        ce_loss(&y, &targets)
    };
    check_grad(&x, &dx, 1, &mut f, "maxpool");
}

#[test]
fn relu_gradient() {
    // Keep values away from the kink at 0 for finite-difference validity.
    let x = uniform(&[1, 3, 2, 2], -1.0, 1.0, 7).map(|v| if v.abs() < 0.1 { v + 0.2 } else { v });
    let targets = vec![0u8, 1, 2, 0];
    let mut relu = Relu::default();
    let y = relu.forward(&x, true);
    let lo = softmax_cross_entropy(&y, &targets);
    let dx = relu.backward(&lo.grad);

    let mut f = |xt: &Tensor| {
        let mut r = Relu::default();
        let y = r.forward(xt, true);
        ce_loss(&y, &targets)
    };
    check_grad(&x, &dx, 1, &mut f, "relu");
}

#[test]
fn upsample_gradient() {
    let x = uniform(&[1, 3, 2, 2], -1.0, 1.0, 8);
    let targets: Vec<u8> = (0..16).map(|i| (i % 3) as u8).collect();
    let mut up = Upsample2x;
    let y = up.forward(&x, true);
    let lo = softmax_cross_entropy(&y, &targets);
    let dx = up.backward(&lo.grad);

    let mut f = |xt: &Tensor| {
        let mut u = Upsample2x;
        let y = u.forward(xt, true);
        ce_loss(&y, &targets)
    };
    check_grad(&x, &dx, 1, &mut f, "upsample");
}

#[test]
fn concat_gradient() {
    let a = uniform(&[1, 2, 2, 2], -1.0, 1.0, 9);
    let b = uniform(&[1, 1, 2, 2], -1.0, 1.0, 10);
    let targets = vec![0u8, 1, 2, 0];
    let y = concat_channels(&a, &b);
    let lo = softmax_cross_entropy(&y, &targets);
    let (da, db) = concat_channels_backward(&lo.grad, 2, 1);

    let mut fa = |at: &Tensor| ce_loss(&concat_channels(at, &b), &targets);
    check_grad(&a, &da, 1, &mut fa, "concat lhs");
    let mut fb = |bt: &Tensor| ce_loss(&concat_channels(&a, bt), &targets);
    check_grad(&b, &db, 1, &mut fb, "concat rhs");
}

#[test]
fn composed_network_gradient() {
    // conv → relu → pool → upsample → conv: exercises caching and chained
    // backward passes together, end to end.
    let s1 = Conv2dShape {
        in_channels: 1,
        out_channels: 4,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let s2 = Conv2dShape {
        in_channels: 4,
        out_channels: 3,
        kernel: 1,
        stride: 1,
        pad: 0,
    };
    let x = uniform(&[1, 1, 4, 4], -1.0, 1.0, 11);
    let targets: Vec<u8> = (0..16).map(|i| (i % 3) as u8).collect();

    let run = |xt: &Tensor| -> (f32, Tensor) {
        let mut c1 = Conv2d::new(s1, 20);
        let mut r = Relu::default();
        let mut p = MaxPool2x2::default();
        let mut u = Upsample2x;
        let mut c2 = Conv2d::new(s2, 21);
        let h1 = c1.forward(xt, true);
        let h2 = r.forward(&h1, true);
        let h3 = p.forward(&h2, true);
        let h4 = u.forward(&h3, true);
        let y = c2.forward(&h4, true);
        let lo = softmax_cross_entropy(&y, &targets);
        let g4 = c2.backward(&lo.grad);
        let g3 = u.backward(&g4);
        let g2 = p.backward(&g3);
        let g1 = r.backward(&g2);
        let dx = c1.backward(&g1);
        (lo.loss, dx)
    };

    let (_, dx) = run(&x);
    let mut f = |xt: &Tensor| run(xt).0;
    check_grad(&x, &dx, 2, &mut f, "composed network");
}
