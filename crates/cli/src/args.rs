//! A small, dependency-free argument parser: `--key value` pairs and
//! `--flag` booleans after a subcommand.
//!
//! Options live in a `BTreeMap` so that iteration (e.g. the first-unknown
//! check in [`Parsed::expect_options`]) reports the same option first on
//! every run — error messages are part of the byte-stable surface too.

use std::collections::BTreeMap;

/// Argument-parsing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--key` with no value where one was required.
    MissingValue(String),
    /// A required option was absent.
    Required(String),
    /// A value failed to parse.
    Invalid(String, String),
    /// An option that is not recognized by the subcommand.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::Required(k) => write!(f, "required option --{k} missing"),
            ArgError::Invalid(k, v) => write!(f, "invalid value '{v}' for --{k}"),
            ArgError::Unknown(k) => write!(f, "unknown option --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line: the subcommand plus its options.
#[derive(Clone, Debug, Default)]
pub struct Parsed {
    /// The subcommand name.
    pub command: String,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
    allowed: Vec<&'static str>,
}

impl Parsed {
    /// Parses raw arguments (without the program name). `flag_names`
    /// lists boolean options that take no value; everything else starting
    /// with `--` expects a value.
    pub fn parse(args: &[String], flag_names: &[&str]) -> Result<Parsed, ArgError> {
        let mut it = args.iter();
        let command = it.next().ok_or(ArgError::MissingCommand)?.clone();
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(ArgError::Unknown(a.clone()));
            };
            if flag_names.contains(&key) {
                flags.push(key.to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(key.to_string()))?;
                options.insert(key.to_string(), value.clone());
            }
        }
        Ok(Parsed {
            command,
            options,
            flags,
            allowed: Vec::new(),
        })
    }

    /// Declares the full option set of the subcommand; any option or flag
    /// outside it is an error. Call before reading values.
    pub fn expect_options(&mut self, allowed: &[&'static str]) -> Result<(), ArgError> {
        self.allowed = allowed.to_vec();
        for k in self.options.keys().chain(self.flags.iter()) {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::Unknown(k.clone()));
            }
        }
        Ok(())
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<String, ArgError> {
        self.options
            .get(key)
            .cloned()
            .ok_or_else(|| ArgError::Required(key.to_string()))
    }

    /// An optional string option.
    pub fn optional(&self, key: &str) -> Option<String> {
        self.options.get(key).cloned()
    }

    /// An optional parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::Invalid(key.to_string(), v.clone())),
        }
    }

    /// True when the boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let p = Parsed::parse(
            &args("label --in a.ppm --out b.ppm --no-filter"),
            &["no-filter"],
        )
        .unwrap();
        assert_eq!(p.command, "label");
        assert_eq!(p.required("in").unwrap(), "a.ppm");
        assert_eq!(p.optional("out").unwrap(), "b.ppm");
        assert!(p.flag("no-filter"));
        assert!(!p.flag("parallel"));
    }

    #[test]
    fn missing_command_errors() {
        assert_eq!(
            Parsed::parse(&[], &[]).unwrap_err(),
            ArgError::MissingCommand
        );
    }

    #[test]
    fn missing_value_errors() {
        let e = Parsed::parse(&args("synth --side"), &[]).unwrap_err();
        assert_eq!(e, ArgError::MissingValue("side".into()));
    }

    #[test]
    fn required_and_defaults() {
        let p = Parsed::parse(&args("synth --side 128"), &[]).unwrap();
        assert_eq!(p.get_or("side", 512usize).unwrap(), 128);
        assert_eq!(p.get_or("seed", 7u64).unwrap(), 7);
        assert_eq!(
            p.required("out").unwrap_err(),
            ArgError::Required("out".into())
        );
    }

    #[test]
    fn invalid_numeric_value_errors() {
        let p = Parsed::parse(&args("synth --side twelve"), &[]).unwrap();
        assert!(matches!(
            p.get_or("side", 0usize).unwrap_err(),
            ArgError::Invalid(_, _)
        ));
    }

    #[test]
    fn unknown_option_rejected_by_expect() {
        let mut p = Parsed::parse(&args("synth --bogus 1"), &[]).unwrap();
        assert_eq!(
            p.expect_options(&["side", "seed"]).unwrap_err(),
            ArgError::Unknown("bogus".into())
        );
    }

    #[test]
    fn positional_arguments_are_rejected() {
        let e = Parsed::parse(&args("synth stray"), &[]).unwrap_err();
        assert_eq!(e, ArgError::Unknown("stray".into()));
    }
}
