//! The `seaice` command-line entry point.

use seaice_cli::commands::{run, USAGE};
use seaice_cli::Parsed;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        println!("{USAGE}");
        return;
    }
    let parsed = match Parsed::parse(&args, &["no-filter", "parallel", "engine", "smoke", "json"]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    match run(parsed) {
        Ok(msg) => println!("{msg}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
