//! # seaice-cli
//!
//! The `seaice` command-line tool: the whole workflow — scene synthesis,
//! cloud/shadow filtering, auto-labeling, threshold calibration, U-Net
//! training, scene classification, and sea-ice analysis — driven from the
//! shell over PPM images and JSON checkpoints.
//!
//! ```text
//! seaice synth     --out scene.ppm [--truth truth.ppm] [--side 512] [--seed 7]
//!                  [--clouds 0.3] [--illumination 1.0]
//! seaice filter    --in scene.ppm --out filtered.ppm
//! seaice label     --in scene.ppm --out labels.ppm [--no-filter]
//!                  [--cuts WATER_HI,THICK_LO]
//! seaice calibrate --image scene.ppm --labels labels.ppm
//! seaice train     --model model.json [--scenes 6] [--scene-size 256]
//!                  [--tile 32] [--epochs 12] [--labels auto|manual]
//! seaice classify  --model model.json --in scene.ppm --out pred.ppm
//!                  [--tile 32] [--no-filter] [--parallel]
//! seaice analyze   --labels labels.ppm
//! seaice lint      [--root DIR] [--format text|json|sarif] [--explain RULE]
//! ```
//!
//! Label images use the paper's color code: red = thick ice, blue = thin
//! ice, green = open water.
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Parsed};
