//! Subcommand implementations. Each returns a human-readable summary on
//! success; all I/O goes through PPM images and JSON checkpoints.

use crate::args::{ArgError, Parsed};
use seaice_core::adapters::{tile_to_sample, InputVariant, LabelSource};
use seaice_core::analysis::{detect_leads, ice_concentration, LeadConfig};
use seaice_core::{classify_scene_parallel, WorkflowConfig};
use seaice_imgproc::buffer::Image;
use seaice_imgproc::io::{read_ppm, write_ppm};
use seaice_label::autolabel::{auto_label, AutoLabelConfig};
use seaice_label::calibrate::calibrate;
use seaice_label::cloudshadow::{CloudShadowFilter, FilterConfig};
use seaice_label::ranges::ClassRanges;
use seaice_label::segment::{color_to_classes, segment_to_color};
use seaice_nn::dataloader::DataLoader;
use seaice_s2::clouds::{self, CloudConfig};
use seaice_s2::dataset::Dataset;
use seaice_s2::synth::{generate, SceneConfig};
use seaice_serve::{classify_scene_engine, Engine, EngineConfig, HttpServer};
use seaice_unet::{checkpoint, train, InferBackend, UNet};
use std::sync::Arc;

/// Top-level error type for command execution.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments.
    Args(ArgError),
    /// File or serialization problem.
    Io(std::io::Error),
    /// Anything else (validation, shape mismatches surfaced politely).
    Msg(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Msg(m) => write!(f, "{m}"),
        }
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Usage text.
pub const USAGE: &str = "usage: seaice <synth|filter|label|calibrate|train|classify|analyze|serve|serve-bench|stream> [options]
  synth       --out scene.ppm [--truth truth.ppm] [--side 512] [--seed 7] [--clouds 0.3] [--illumination 1.0]
  filter      --in scene.ppm --out filtered.ppm
  label       --in scene.ppm --out labels.ppm [--no-filter] [--cuts WATER_HI,THICK_LO]
  calibrate   --image scene.ppm --labels labels.ppm
  train       --model model.json [--scenes 6] [--scene-size 256] [--tile 32] [--epochs 12] [--labels auto|manual] [--seed 2019] [--trace FILE]
  classify    --model model.json --in scene.ppm --out pred.ppm [--tile 32] [--backend f32|int8] [--no-filter] [--parallel | --engine [--workers N] [--batch 8]] [--trace FILE]
  analyze     --labels labels.ppm
  serve       --model model.json [--addr 127.0.0.1:8080] [--tile 32] [--backend f32|int8] [--workers N] [--batch 8] [--queue 256] [--cache 1024] [--no-filter] [--smoke]
  serve-bench [--scale small|medium|large] [--scenes N] [--scene-size N] [--tile N] [--passes N] [--clients N] [--backend f32|int8] [--trace FILE]
  stream      [--regions N] [--revisits N] [--cadence DAYS] [--scene-size N] [--tile N] [--drift PX] [--seed N] [--workers N] [--epochs N] [--trace FILE]
  lint        [--root DIR] [--json]";

/// Dispatches a parsed command.
pub fn run(mut p: Parsed) -> Result<String, CliError> {
    match p.command.as_str() {
        "synth" => synth(&mut p),
        "filter" => filter(&mut p),
        "label" => label(&mut p),
        "calibrate" => run_calibrate(&mut p),
        // seaice-lint: allow(transitive-wallclock) reason="dispatch reaches the wall clock only through traced(), whose spans are diagnostic-only"
        "train" => traced(&mut p, run_train),
        "classify" => traced(&mut p, classify),
        "analyze" => analyze(&mut p),
        "serve" => serve(&mut p),
        "serve-bench" => traced(&mut p, serve_bench),
        "stream" => traced(&mut p, stream),
        "lint" => lint(&mut p),
        other => Err(CliError::Msg(format!("unknown command '{other}'\n{USAGE}"))),
    }
}

/// Wraps a subcommand with `--trace FILE` support: span recording is
/// switched on before the command runs and the collected spans are
/// exported as Chrome `trace_event` JSON afterwards. Recording is
/// process-global and stays on once enabled, which is fine for a
/// one-command CLI process.
fn traced(
    p: &mut Parsed,
    f: fn(&mut Parsed) -> Result<String, CliError>,
) -> Result<String, CliError> {
    let trace_path = p.optional("trace");
    if trace_path.is_some() {
        // seaice-lint: allow(transitive-wallclock) reason="trace export is a diagnostic artifact; span timestamps are real time by design and never feed command output"
        seaice_obs::trace::enable();
    }
    let mut msg = f(p)?;
    if let Some(path) = trace_path {
        let path = std::path::Path::new(&path);
        seaice_obs::durable::write_atomic(
            path,
            seaice_obs::trace::export_chrome_json().as_bytes(),
            &seaice_obs::durable::DurableCtx::disabled(),
            seaice_obs::durable::path_key(path),
        )
        .map_err(|e| e.into_io())?;
        msg.push_str(&format!("\nwrote trace {}", path.display()));
    }
    Ok(msg)
}

fn ranges_from(p: &Parsed) -> Result<ClassRanges, CliError> {
    match p.optional("cuts") {
        None => Ok(ClassRanges::paper()),
        Some(cuts) => {
            let parts: Vec<_> = cuts.split(',').collect();
            let parse = |s: &str| {
                s.trim()
                    .parse::<u8>()
                    .map_err(|_| CliError::Args(ArgError::Invalid("cuts".into(), cuts.clone())))
            };
            if parts.len() != 2 {
                return Err(CliError::Args(ArgError::Invalid("cuts".into(), cuts)));
            }
            Ok(ClassRanges::from_value_cuts(
                parse(parts[0])?,
                parse(parts[1])?,
            ))
        }
    }
}

fn synth(p: &mut Parsed) -> Result<String, CliError> {
    p.expect_options(&["out", "truth", "side", "seed", "clouds", "illumination"])?;
    let out = p.required("out")?;
    let side = p.get_or("side", 512usize)?;
    let seed = p.get_or("seed", 7u64)?;
    let coverage = p.get_or("clouds", 0.0f64)?;
    let illumination = p.get_or("illumination", 1.0f32)?;

    let scene = generate(
        &SceneConfig {
            illumination,
            ..SceneConfig::tiny(side)
        },
        seed,
    );
    let rgb = if coverage > 0.0 {
        let layer = clouds::generate(
            &CloudConfig {
                coverage,
                ..CloudConfig::tiny(side)
            },
            seed ^ 0xC10D,
            side,
            side,
        );
        layer.apply(&scene.rgb)
    } else {
        scene.rgb.clone()
    };
    write_ppm(&out, &rgb)?;
    let mut msg = format!("wrote {side}x{side} scene to {out}");
    if let Some(truth_path) = p.optional("truth") {
        write_ppm(&truth_path, &segment_to_color(&scene.truth))?;
        msg.push_str(&format!(", truth labels to {truth_path}"));
    }
    Ok(msg)
}

fn filter(p: &mut Parsed) -> Result<String, CliError> {
    p.expect_options(&["in", "out"])?;
    let input = read_ppm(p.required("in")?)?;
    let out_path = p.required("out")?;
    let side = input.width().min(input.height());
    let result = CloudShadowFilter::new(FilterConfig::for_tile(side)).apply(&input);
    write_ppm(&out_path, &result.filtered)?;
    Ok(format!(
        "filtered {}x{} image -> {} (cloud {:.1}%, shadow {:.1}%)",
        input.width(),
        input.height(),
        out_path,
        result.cloud_mask.nonzero_fraction() * 100.0,
        result.shadow_mask.nonzero_fraction() * 100.0
    ))
}

fn label(p: &mut Parsed) -> Result<String, CliError> {
    p.expect_options(&["in", "out", "no-filter", "cuts"])?;
    let input = read_ppm(p.required("in")?)?;
    let out_path = p.required("out")?;
    let side = input.width().min(input.height());
    let cfg = AutoLabelConfig {
        ranges: ranges_from(p)?,
        filter: if p.flag("no-filter") {
            None
        } else {
            Some(FilterConfig::for_tile(side))
        },
        ..AutoLabelConfig::default()
    };
    let result = auto_label(&input, &cfg);
    write_ppm(&out_path, &result.color_label)?;
    let conc = ice_concentration(&result.class_mask);
    Ok(format!(
        "labeled {} -> {}: {:.1}% thick ice, {:.1}% thin ice, {:.1}% open water",
        p.required("in")?,
        out_path,
        conc.thick_ice * 100.0,
        conc.thin_ice * 100.0,
        conc.open_water * 100.0
    ))
}

fn run_calibrate(p: &mut Parsed) -> Result<String, CliError> {
    p.expect_options(&["image", "labels"])?;
    let image = read_ppm(p.required("image")?)?;
    let labels = read_ppm(p.required("labels")?)?;
    if image.dimensions() != labels.dimensions() {
        return Err(CliError::Msg(
            "image and labels must have the same size".into(),
        ));
    }
    let mask = color_to_classes(&labels);
    let cal = calibrate(&[(&image, &mask)]);
    let (water_hi, thick_lo) = cal.ranges.value_cuts();
    Ok(format!(
        "calibrated on {} pixels: water V<={water_hi}, thick V>={thick_lo} (agreement {:.2}%)\nuse: seaice label --cuts {water_hi},{thick_lo} ...",
        cal.pixels,
        cal.agreement * 100.0
    ))
}

fn run_train(p: &mut Parsed) -> Result<String, CliError> {
    p.expect_options(&[
        "model",
        "scenes",
        "scene-size",
        "tile",
        "epochs",
        "labels",
        "seed",
        "trace",
    ])?;
    let model_path = p.required("model")?;
    let scenes = p.get_or("scenes", 6usize)?;
    let scene_size = p.get_or("scene-size", 256usize)?;
    let tile = p.get_or("tile", 32usize)?;
    let epochs = p.get_or("epochs", 12usize)?;
    let labels = match p.optional("labels").as_deref() {
        None | Some("auto") => LabelSource::Auto,
        Some("manual") => LabelSource::Manual,
        Some(v) => {
            return Err(CliError::Args(ArgError::Invalid(
                "labels".into(),
                v.to_string(),
            )))
        }
    };
    let seed = p.get_or("seed", 2019u64)?;

    let mut cfg = WorkflowConfig::scaled(scenes, scene_size, tile, epochs);
    cfg.dataset.seed = seed;
    cfg.unet.assert_input_side(tile);
    let dataset = Dataset::build(cfg.dataset.clone());
    let samples: Vec<_> = dataset
        .train
        .iter()
        .map(|t| tile_to_sample(t, InputVariant::Filtered, labels, &cfg.label))
        .collect();
    let loader = DataLoader::new(samples, 8, Some(seed));
    let mut model = UNet::new(cfg.unet);
    // seaice-lint: allow(wallclock-in-deterministic-path) reason="elapsed seconds appear only in the human-readable summary string; nothing downstream orders or hashes on it"
    let t0 = std::time::Instant::now();
    let trace = seaice_obs::trace::tracer();
    let report = {
        let _span = trace.span("train.run", "train");
        train(&mut model, &loader, &cfg.train)
    };
    checkpoint::save(&mut model, &model_path)?;
    Ok(format!(
        "trained U-Net ({} labels) on {} tiles for {epochs} epochs in {:.1}s (loss {:.3} -> {:.3}); saved {}",
        if labels == LabelSource::Auto { "auto" } else { "manual" },
        dataset.train.len(),
        t0.elapsed().as_secs_f64(),
        report.epoch_losses.first().copied().unwrap_or(f32::NAN),
        report.epoch_losses.last().copied().unwrap_or(f32::NAN),
        model_path
    ))
}

/// Reads a checkpoint file without restoring it into a model (the
/// parallel and serving paths restore one replica per worker).
fn read_checkpoint(path: &str) -> Result<checkpoint::Checkpoint, CliError> {
    checkpoint::read_checkpoint(
        std::path::Path::new(path),
        &seaice_obs::durable::DurableCtx::disabled(),
    )
    .map_err(CliError::Io)
}

/// Parses `--backend f32|int8` (default f32).
fn backend_from(p: &Parsed) -> Result<InferBackend, CliError> {
    match p.optional("backend") {
        None => Ok(InferBackend::F32),
        Some(v) => InferBackend::parse(&v)
            .ok_or_else(|| CliError::Args(ArgError::Invalid("backend".into(), v))),
    }
}

fn classify(p: &mut Parsed) -> Result<String, CliError> {
    p.expect_options(&[
        "model",
        "in",
        "out",
        "tile",
        "backend",
        "no-filter",
        "parallel",
        "engine",
        "workers",
        "batch",
        "trace",
    ])?;
    let model_path = p.required("model")?;
    let input = read_ppm(p.required("in")?)?;
    let out_path = p.required("out")?;
    let tile = p.get_or("tile", 32usize)?;
    let filter = !p.flag("no-filter");
    let backend = backend_from(p)?;

    let result = if p.flag("engine") {
        let ckpt = read_checkpoint(&model_path)?;
        let mut cfg = EngineConfig::for_tile(tile);
        cfg.filter = filter;
        cfg.workers = p.get_or("workers", cfg.workers)?;
        cfg.max_batch_size = p.get_or("batch", cfg.max_batch_size)?;
        cfg.backend = backend;
        let engine = Engine::new(&ckpt, cfg).map_err(|e| CliError::Msg(e.to_string()))?;
        // seaice-lint: allow(transitive-wallclock) reason="engine-backed classify reaches the serve admission clock; mask bytes stay deterministic, only latency stats carry wall time"
        classify_scene_engine(&engine, &input).map_err(|e| CliError::Msg(e.to_string()))?
    } else if p.flag("parallel") {
        if backend != InferBackend::F32 {
            return Err(CliError::Msg(
                "--parallel only supports the f32 backend; use --engine for int8".into(),
            ));
        }
        let ckpt = read_checkpoint(&model_path)?;
        classify_scene_parallel(&ckpt, &input, tile, filter)
    } else {
        let mut model = match backend {
            InferBackend::F32 => {
                seaice_core::LoadedModel::F32(Box::new(checkpoint::load(&model_path)?))
            }
            InferBackend::Int8 => {
                let calib = seaice_core::default_calibration(tile).map_err(CliError::Msg)?;
                seaice_core::LoadedModel::Int8(Box::new(checkpoint::load_quantized(
                    &model_path,
                    &calib,
                )?))
            }
        };
        seaice_core::classify_scene_with(&mut model, &input, tile, filter)
    };
    write_ppm(&out_path, &result.color)?;
    Ok(format!(
        "classified {}x{} scene -> {}: {:.1}% thick ice, {:.1}% thin ice, {:.1}% open water",
        input.width(),
        input.height(),
        out_path,
        result.fractions.0 * 100.0,
        result.fractions.1 * 100.0,
        result.fractions.2 * 100.0
    ))
}

fn serve(p: &mut Parsed) -> Result<String, CliError> {
    p.expect_options(&[
        "model",
        "addr",
        "tile",
        "backend",
        "workers",
        "batch",
        "queue",
        "cache",
        "no-filter",
        "smoke",
    ])?;
    let ckpt = read_checkpoint(&p.required("model")?)?;
    let tile = p.get_or("tile", 32usize)?;
    let mut cfg = EngineConfig::for_tile(tile);
    cfg.workers = p.get_or("workers", cfg.workers)?;
    cfg.max_batch_size = p.get_or("batch", cfg.max_batch_size)?;
    cfg.queue_capacity = p.get_or("queue", cfg.queue_capacity)?;
    cfg.cache_capacity = p.get_or("cache", cfg.cache_capacity)?;
    cfg.filter = !p.flag("no-filter");
    cfg.backend = backend_from(p)?;
    // Live serving wants the metrics registry on so GET /metrics has
    // counters and histograms to expose; batch commands leave it disabled.
    seaice_obs::enable_metrics();
    let engine = Arc::new(Engine::new(&ckpt, cfg).map_err(|e| CliError::Msg(e.to_string()))?);

    if p.flag("smoke") {
        // Self-test: bind an ephemeral port, push one synthetic tile
        // through the full engine path, report, shut down cleanly.
        let mut server = HttpServer::start(Arc::clone(&engine), "127.0.0.1:0")?;
        let tile_img = generate(&SceneConfig::tiny(tile), 1).rgb;
        let mask = engine
            // seaice-lint: allow(transitive-wallclock) reason="serve command drives the real engine; admission deadlines and latency stats are wall time by design"
            .classify_blocking(tile_img)
            .map_err(|e| CliError::Msg(e.to_string()))?;
        let stats = engine.stats();
        server.shutdown();
        return Ok(format!(
            "serve smoke on {}: classified 1 tile ({} px mask) on {} backend, ok={}, p50={}us",
            server.addr(),
            mask.len(),
            stats.backend,
            stats.ok,
            stats.latency.p50_us
        ));
    }

    let addr = p
        .optional("addr")
        .unwrap_or_else(|| "127.0.0.1:8080".into());
    let server = HttpServer::start(engine, &addr)?;
    println!(
        "seaice-serve listening on {} (tile {tile}, backend {}, {} workers, batch {}, queue {}, cache {})",
        server.addr(),
        cfg.backend,
        cfg.workers,
        cfg.max_batch_size,
        cfg.queue_capacity,
        cfg.cache_capacity
    );
    println!(
        "routes: POST /classify (raw RGB tile bytes), GET /stats, GET /metrics (Prometheus), GET /healthz"
    );
    loop {
        std::thread::park();
    }
}

fn serve_bench(p: &mut Parsed) -> Result<String, CliError> {
    p.expect_options(&[
        "scale",
        "scenes",
        "scene-size",
        "tile",
        "passes",
        "clients",
        "backend",
        "trace",
    ])?;
    let scale = match p.optional("scale") {
        None => seaice_bench::scale::Scale::Small,
        Some(v) => seaice_bench::scale::Scale::parse(&v)
            .ok_or_else(|| CliError::Args(ArgError::Invalid("scale".into(), v)))?,
    };
    let mut cfg = seaice_bench::servebench::ServeBenchConfig::from_scale(scale);
    cfg.scenes = p.get_or("scenes", cfg.scenes)?;
    cfg.scene_side = p.get_or("scene-size", cfg.scene_side)?;
    cfg.tile_size = p.get_or("tile", cfg.tile_size)?;
    cfg.passes = p.get_or("passes", cfg.passes)?;
    cfg.clients = p.get_or("clients", cfg.clients)?;
    cfg.backend = backend_from(p)?;
    // seaice-lint: allow(transitive-wallclock) reason="servebench measures wall-clock throughput/latency by definition; nothing downstream treats its output as deterministic"
    Ok(seaice_bench::servebench::run_config(cfg).render())
}

fn stream(p: &mut Parsed) -> Result<String, CliError> {
    p.expect_options(&[
        "regions",
        "revisits",
        "cadence",
        "scene-size",
        "tile",
        "drift",
        "seed",
        "workers",
        "epochs",
        "trace",
    ])?;
    let mut cfg = seaice_core::StreamWorkflowConfig::tiny();
    cfg.regions = p.get_or("regions", cfg.regions)?;
    cfg.revisits = p.get_or("revisits", cfg.revisits)?;
    cfg.cadence_days = p.get_or("cadence", cfg.cadence_days)?;
    cfg.scene_side = p.get_or("scene-size", cfg.scene_side)?;
    cfg.tile = p.get_or("tile", cfg.tile)?;
    cfg.drift_px = p.get_or("drift", cfg.drift_px)?;
    cfg.seed = p.get_or("seed", cfg.seed)?;
    cfg.workers = p.get_or("workers", cfg.workers)?;
    cfg.epochs = p.get_or("epochs", cfg.epochs)?;

    let ckpt = seaice_core::train_stream_model(&cfg);
    let out = seaice_core::run_stream(
        &cfg,
        &ckpt,
        seaice_stream::StreamPolicy::resilient(),
        Arc::new(seaice_faults::FaultPlan::disabled()),
    )
    .map_err(|e| CliError::Msg(e.to_string()))?;

    let mut s = out.series.render();
    s.push('\n');
    s.push_str(&out.report.render());
    Ok(s)
}

fn lint(p: &mut Parsed) -> Result<String, CliError> {
    p.expect_options(&["root", "json", "format", "explain"])?;
    if let Some(rule) = p.optional("explain") {
        return match seaice_lint::explain::explain(&rule) {
            Some(blurb) => Ok(format!("{rule}\n{}\n\n{blurb}", "-".repeat(rule.len()))),
            None => Err(CliError::Msg(format!(
                "unknown rule `{rule}`; known rules: {}",
                seaice_lint::explain::ALL_RULES.join(", ")
            ))),
        };
    }
    let format = match (p.optional("format").as_deref(), p.flag("json")) {
        (Some("sarif"), _) => "sarif",
        (Some("json"), _) | (None, true) => "json",
        (Some("text") | None, _) => "text",
        (Some(other), _) => {
            return Err(CliError::Msg(format!(
                "unknown format `{other}` (text|json|sarif)"
            )))
        }
    };
    let root = std::path::PathBuf::from(p.optional("root").unwrap_or_else(|| ".".into()));
    let cfg = seaice_lint::LintConfig::default();
    let diags = seaice_lint::lint_workspace(&root, &cfg)?;
    let rendered = match format {
        "json" => seaice_lint::render_json(&diags),
        "sarif" => seaice_lint::sarif::render_sarif(&diags),
        _ => {
            let mut s = String::new();
            for d in &diags {
                s.push_str(&d.to_string());
                s.push('\n');
            }
            if diags.is_empty() {
                s.push_str("seaice-lint: clean");
            } else {
                s.push_str(&format!("seaice-lint: {} diagnostic(s)", diags.len()));
            }
            s
        }
    };
    if diags.is_empty() {
        Ok(rendered)
    } else {
        Err(CliError::Msg(rendered))
    }
}

fn analyze(p: &mut Parsed) -> Result<String, CliError> {
    p.expect_options(&["labels"])?;
    let labels = read_ppm(p.required("labels")?)?;
    let mask = color_to_classes(&labels);
    let conc = ice_concentration(&mask);
    let leads = detect_leads(&mask, &LeadConfig::default());
    let mut s = format!(
        "ice concentration: {:.1}% total ice ({:.1}% thick, {:.1}% thin), {:.1}% open water\n",
        conc.total_ice * 100.0,
        conc.thick_ice * 100.0,
        conc.thin_ice * 100.0,
        conc.open_water * 100.0
    );
    s.push_str(&format!(
        "leads: {} detected ({} non-lead water bodies), mean width {:.1} px, total area {} px",
        leads.leads.len(),
        leads.non_lead_water_components,
        leads.mean_width(),
        leads.total_lead_area()
    ));
    for (i, l) in leads.leads.iter().take(5).enumerate() {
        s.push_str(&format!(
            "\n  lead {}: length {} px, width {:.1} px, centroid ({:.0}, {:.0})",
            i + 1,
            l.length,
            l.mean_width,
            l.centroid.0,
            l.centroid.1
        ));
    }
    Ok(s)
}

/// An `Image<u8>` convenience used by tests.
pub fn image_side(img: &Image<u8>) -> usize {
    img.width().min(img.height())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("seaice-cli-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn parse(line: &str) -> Parsed {
        let args: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        Parsed::parse(&args, &["no-filter", "parallel", "engine", "smoke"]).unwrap()
    }

    #[test]
    fn synth_filter_label_analyze_pipeline() {
        let scene = tmp("scene.ppm");
        let truth = tmp("truth.ppm");
        let filtered = tmp("filtered.ppm");
        let labels = tmp("labels.ppm");

        let msg = run(parse(&format!(
            "synth --out {scene} --truth {truth} --side 96 --seed 3 --clouds 0.3"
        )))
        .unwrap();
        assert!(msg.contains("96x96"));

        let msg = run(parse(&format!("filter --in {scene} --out {filtered}"))).unwrap();
        assert!(msg.contains("filtered"));

        let msg = run(parse(&format!("label --in {scene} --out {labels}"))).unwrap();
        assert!(msg.contains("thick ice"));

        let msg = run(parse(&format!("analyze --labels {labels}"))).unwrap();
        assert!(msg.contains("ice concentration"));

        let msg = run(parse(&format!(
            "calibrate --image {scene} --labels {truth}"
        )))
        .unwrap();
        assert!(msg.contains("seaice label --cuts"));

        for f in [scene, truth, filtered, labels] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn train_and_classify_roundtrip() {
        let scene = tmp("c-scene.ppm");
        let pred = tmp("c-pred.ppm");
        let pred_par = tmp("c-pred-par.ppm");
        let model = tmp("c-model.json");

        run(parse(&format!("synth --out {scene} --side 64 --seed 5"))).unwrap();
        let msg = run(parse(&format!(
            "train --model {model} --scenes 2 --scene-size 64 --tile 32 --epochs 2 --labels manual"
        )))
        .unwrap();
        assert!(msg.contains("saved"));

        let msg = run(parse(&format!(
            "classify --model {model} --in {scene} --out {pred} --tile 32"
        )))
        .unwrap();
        assert!(msg.contains("classified"));

        // Parallel classification writes identical output.
        run(parse(&format!(
            "classify --model {model} --in {scene} --out {pred_par} --tile 32 --parallel"
        )))
        .unwrap();
        let a = read_ppm(&pred).unwrap();
        let b = read_ppm(&pred_par).unwrap();
        assert_eq!(a, b);

        // ... and so does the serving engine.
        let pred_eng = tmp("c-pred-eng.ppm");
        run(parse(&format!(
            "classify --model {model} --in {scene} --out {pred_eng} --tile 32 --engine --workers 2 --batch 3"
        )))
        .unwrap();
        assert_eq!(read_ppm(&pred_eng).unwrap(), a);

        // The serve smoke flag runs the HTTP + engine path end to end.
        let msg = run(parse(&format!("serve --model {model} --tile 32 --smoke"))).unwrap();
        assert!(msg.contains("serve smoke"), "{msg}");
        assert!(msg.contains("ok=1"), "{msg}");

        // --trace exports a Chrome trace_event JSON with the engine spans.
        let trace = tmp("c-trace.json");
        let msg = run(parse(&format!(
            "classify --model {model} --in {scene} --out {pred_eng} --tile 32 --engine --trace {trace}"
        )))
        .unwrap();
        assert!(msg.contains("wrote trace"), "{msg}");
        let src = std::fs::read_to_string(&trace).unwrap();
        let stats = seaice_obs::trace::validate_chrome_trace(&src).unwrap();
        assert!(stats.events > 0, "engine run should emit spans");

        for f in [scene, pred, pred_par, pred_eng, model, trace] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn stream_runs_the_dag_and_reports_the_drift_series() {
        let msg = run(parse(
            "stream --regions 1 --revisits 2 --scene-size 48 --tile 16 --workers 2 --epochs 1",
        ))
        .unwrap();
        // The drift-series table plus the per-stage scheduler report.
        assert!(msg.contains("region"), "{msg}");
        assert!(msg.contains("changed"), "{msg}");
        assert!(msg.contains("changedetect"), "{msg}");
        assert!(msg.contains("bottleneck makespan"), "{msg}");
    }

    #[test]
    fn unknown_command_reports_usage() {
        let err = run(parse("frobnicate")).unwrap_err();
        assert!(err.to_string().contains("usage"));
    }

    #[test]
    fn label_with_custom_cuts() {
        let scene = tmp("cuts-scene.ppm");
        let labels = tmp("cuts-labels.ppm");
        run(parse(&format!(
            "synth --out {scene} --side 64 --seed 9 --illumination 0.45"
        )))
        .unwrap();
        // Night cuts from the analytic rescale: water<=14, thick>=92.
        let msg = run(parse(&format!(
            "label --in {scene} --out {labels} --no-filter --cuts 14,92"
        )))
        .unwrap();
        assert!(msg.contains("thick ice"));
        for f in [scene, labels] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn size_mismatch_is_a_polite_error() {
        let a = tmp("mm-a.ppm");
        let b = tmp("mm-b.ppm");
        run(parse(&format!("synth --out {a} --side 32 --seed 1"))).unwrap();
        run(parse(&format!("synth --out {b} --side 64 --seed 1"))).unwrap();
        let err = run(parse(&format!("calibrate --image {a} --labels {b}"))).unwrap_err();
        assert!(err.to_string().contains("same size"));
        for f in [a, b] {
            std::fs::remove_file(f).ok();
        }
    }
}
