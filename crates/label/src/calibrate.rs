//! Threshold calibration for other seasons and regions.
//!
//! §IV-B-2 of the paper: "the color limits for color-segmentation are not
//! independent of different regions and seasons. For the partial night
//! season of the Antarctic, we had to change the color threshold
//! brightness values manually … a manual color limit setup may be needed
//! in those cases." This module provides both remedies:
//!
//! * [`ClassRanges::for_illumination`] rescales the paper's summer
//!   calibration analytically for a known illumination change;
//! * [`calibrate`] *learns* the two V cut points from a handful of
//!   labeled reference tiles by exhaustively maximizing pixel agreement —
//!   the automated version of the authors' trial-and-error.

use crate::ranges::{ClassRanges, HsvRange, IceClass};
use seaice_imgproc::buffer::Image;
use seaice_imgproc::color::rgb_to_hsv;

impl ClassRanges {
    /// Rescales the paper's summer V thresholds by a global illumination
    /// factor in `(0, 1]` (e.g. `0.45` for the Antarctic partial-night
    /// season). Hue and saturation stay unconstrained, as in the paper.
    ///
    /// # Panics
    /// Panics unless `0 < factor ≤ 1`.
    pub fn for_illumination(factor: f32) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "illumination must be in (0, 1]"
        );
        let summer = Self::paper();
        let thick_lo = (summer.thick.lo[2] as f32 * factor).round() as u8;
        let water_hi = (summer.water.hi[2] as f32 * factor).round() as u8;
        Self::from_value_cuts(water_hi, thick_lo)
    }

    /// The Antarctic partial-night calibration (~45 % of summer
    /// illumination).
    pub fn partial_night() -> Self {
        Self::for_illumination(0.45)
    }

    /// Builds the three ranges from two V cut points: water is
    /// `V ≤ water_hi`, thick ice is `V ≥ thick_lo`, thin ice is the band
    /// between.
    ///
    /// # Panics
    /// Panics unless `water_hi + 1 < thick_lo`.
    pub fn from_value_cuts(water_hi: u8, thick_lo: u8) -> Self {
        assert!(
            (water_hi as u16 + 1) < thick_lo as u16,
            "cut points leave no thin-ice band: {water_hi} / {thick_lo}"
        );
        Self {
            thick: HsvRange {
                lo: [0, 0, thick_lo],
                hi: [185, 255, 255],
            },
            thin: HsvRange {
                lo: [0, 0, water_hi + 1],
                hi: [185, 255, thick_lo - 1],
            },
            water: HsvRange {
                lo: [0, 0, 0],
                hi: [185, 255, water_hi],
            },
        }
    }

    /// The two V cut points `(water_hi, thick_lo)` of a value-partitioned
    /// range set.
    pub fn value_cuts(&self) -> (u8, u8) {
        (self.water.hi[2], self.thick.lo[2])
    }
}

/// Result of a calibration run.
#[derive(Clone, Debug, PartialEq)]
pub struct Calibration {
    /// The fitted ranges.
    pub ranges: ClassRanges,
    /// Training pixel agreement of the fit, in `[0, 1]`.
    pub agreement: f64,
    /// Pixels used.
    pub pixels: usize,
}

/// Fits the two V cut points to labeled reference data by exhaustive
/// search over all `(water_hi, thick_lo)` pairs (O(256²) with prefix
/// sums — instantaneous), maximizing pixel agreement.
///
/// `samples` pairs RGB tiles with class masks (ground truth or trusted
/// manual labels).
///
/// # Panics
/// Panics if `samples` is empty, shapes mismatch, or a mask contains
/// invalid classes.
pub fn calibrate(samples: &[(&Image<u8>, &Image<u8>)]) -> Calibration {
    assert!(!samples.is_empty(), "calibration needs at least one sample");

    // Per-class V histograms.
    let mut hist = [[0u64; 256]; 3];
    let mut pixels = 0usize;
    for (rgb, truth) in samples {
        assert_eq!(rgb.dimensions(), truth.dimensions(), "sample size mismatch");
        let hsv = rgb_to_hsv(rgb);
        for (px, &c) in hsv.as_slice().chunks_exact(3).zip(truth.as_slice()) {
            assert!(c < 3, "invalid class {c}");
            hist[c as usize][px[2] as usize] += 1;
            pixels += 1;
        }
    }

    // Prefix sums: cdf[c][v] = count of class-c pixels with V ≤ v.
    let mut cdf = [[0u64; 256]; 3];
    for c in 0..3 {
        let mut acc = 0u64;
        for v in 0..256 {
            acc += hist[c][v];
            cdf[c][v] = acc;
        }
    }
    let total = |c: usize| cdf[c][255];
    let water = IceClass::Water as usize;
    let thin = IceClass::Thin as usize;
    let thick = IceClass::Thick as usize;

    // Exhaustive search over water_hi < thick_lo − 1.
    let mut best = (0u8, 2u8, 0u64);
    for water_hi in 0..=253usize {
        for thick_lo in (water_hi + 2)..=255usize {
            let correct = cdf[water][water_hi]
                + (cdf[thin][thick_lo - 1] - cdf[thin][water_hi])
                + (total(thick) - cdf[thick][thick_lo - 1]);
            if correct > best.2 {
                // seaice-lint: allow(narrowing-cast-in-kernel) reason="loop bounds pin water_hi <= 253 and thick_lo <= 255, both within u8"
                best = (water_hi as u8, thick_lo as u8, correct);
            }
        }
    }

    Calibration {
        ranges: ClassRanges::from_value_cuts(best.0, best.1),
        agreement: best.2 as f64 / pixels as f64,
        pixels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::segment_classes;
    use seaice_s2::synth::{generate, SceneConfig};

    fn night_scene(side: usize, seed: u64) -> seaice_s2::synth::Scene {
        generate(
            &SceneConfig {
                illumination: 0.45,
                ..SceneConfig::tiny(side)
            },
            seed,
        )
    }

    fn accuracy(mask: &Image<u8>, truth: &Image<u8>) -> f64 {
        mask.as_slice()
            .iter()
            .zip(truth.as_slice())
            .filter(|(a, b)| a == b)
            .count() as f64
            / truth.as_slice().len() as f64
    }

    #[test]
    fn summer_ranges_fail_on_partial_night_scenes() {
        let scene = night_scene(96, 4);
        let mask = segment_classes(&scene.rgb, &ClassRanges::paper());
        let acc = accuracy(&mask, &scene.truth);
        assert!(
            acc < 0.75,
            "summer thresholds should misread dark scenes, got {acc:.3}"
        );
    }

    #[test]
    fn illumination_scaled_ranges_recover_night_scenes() {
        let scene = night_scene(96, 4);
        let mask = segment_classes(&scene.rgb, &ClassRanges::partial_night());
        let acc = accuracy(&mask, &scene.truth);
        assert!(acc > 0.95, "partial-night thresholds accuracy {acc:.3}");
    }

    #[test]
    fn calibration_learns_night_thresholds_from_samples() {
        let reference = night_scene(96, 7);
        let cal = calibrate(&[(&reference.rgb, &reference.truth)]);
        assert!(cal.agreement > 0.99, "fit agreement {:.3}", cal.agreement);

        // The fitted ranges generalize to an unseen night scene.
        let fresh = night_scene(96, 8);
        let mask = segment_classes(&fresh.rgb, &cal.ranges);
        let acc = accuracy(&mask, &fresh.truth);
        assert!(acc > 0.95, "calibrated accuracy on fresh scene {acc:.3}");

        // Fitted cuts land near the analytic illumination rescale.
        let (w_fit, t_fit) = cal.ranges.value_cuts();
        let (w_ana, t_ana) = ClassRanges::partial_night().value_cuts();
        assert!(
            (w_fit as i32 - w_ana as i32).abs() <= 6,
            "water cut {w_fit} vs analytic {w_ana}"
        );
        assert!(
            (t_fit as i32 - t_ana as i32).abs() <= 12,
            "thick cut {t_fit} vs analytic {t_ana}"
        );
    }

    #[test]
    fn calibration_on_summer_data_recovers_paper_cuts() {
        let scene = generate(&SceneConfig::tiny(96), 5);
        let cal = calibrate(&[(&scene.rgb, &scene.truth)]);
        let (w, t) = cal.ranges.value_cuts();
        // The paper's cuts are 30 / 205; synthetic rendering leaves wide
        // dead bands so any cut inside them is equivalent — check the
        // learned cuts sit in the correct bands.
        // fBm texture rarely reaches its extremes, so the observed class
        // bands are slightly narrower than the nominal ones; ties inside
        // the dead band resolve to the first (lowest) cut.
        assert!((20..=59).contains(&w), "water cut {w}");
        assert!((170..=215).contains(&t), "thick cut {t}");
        assert!(cal.agreement > 0.999);
    }

    #[test]
    fn from_value_cuts_partitions() {
        let r = ClassRanges::from_value_cuts(30, 205);
        assert_eq!(r, ClassRanges::paper());
        for v in 0..=255u8 {
            let hits = IceClass::ALL
                .into_iter()
                .filter(|c| r.range(*c).contains(&[0, 0, v]))
                .count();
            assert_eq!(hits, 1);
        }
    }

    #[test]
    #[should_panic(expected = "no thin-ice band")]
    fn colliding_cuts_panic() {
        let _ = ClassRanges::from_value_cuts(100, 101);
    }

    #[test]
    fn illumination_one_is_the_paper_calibration() {
        assert_eq!(ClassRanges::for_illumination(1.0), ClassRanges::paper());
    }
}
