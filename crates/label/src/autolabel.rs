//! End-to-end auto-labeling (Fig. 6): optional thin-cloud/shadow
//! filtering, then HSV color-threshold segmentation, producing the class
//! mask and the color-coded label image used as U-Net training data.

use crate::cloudshadow::{CloudShadowFilter, FilterConfig};
use crate::fused::{segment_into, ClassLut};
use crate::parallel::WorkerPool;
use crate::ranges::ClassRanges;
use crate::segment::{segment_classes, segment_to_color};
use rayon::prelude::*;
use seaice_imgproc::buffer::{Image, Scratch};
use serde::{Deserialize, Serialize};

/// Which segmentation kernel the auto-labeler runs.
///
/// Both produce bit-identical masks for every RGB input (enforced by
/// `tests/fused_vs_reference.rs`); `Fused` is the fast path and the
/// default, `Reference` exists as the trusted baseline for differential
/// testing and benchmarking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelBackend {
    /// `f32` HSV conversion to an intermediate image, then per-pixel
    /// range scans (the original, OpenCV-shaped path).
    Reference,
    /// Single-pass integer HSV + per-channel bitmask LUTs, no
    /// intermediate images (see [`crate::fused`]).
    Fused,
}

// Not derived: the vendored serde_derive shim can't parse `#[default]`
// variant attributes alongside its `Serialize`/`Deserialize` derives.
#[allow(clippy::derivable_impls)]
impl Default for LabelBackend {
    fn default() -> Self {
        LabelBackend::Fused
    }
}

/// Auto-labeling configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AutoLabelConfig {
    /// HSV class thresholds (defaults to the paper's calibration).
    pub ranges: ClassRanges,
    /// Thin-cloud/shadow filter settings; `None` labels the raw image
    /// (the paper's "original S2 images" arm).
    pub filter: Option<FilterConfig>,
    /// Segmentation kernel selection.
    pub backend: LabelBackend,
}

impl Default for AutoLabelConfig {
    fn default() -> Self {
        Self {
            ranges: ClassRanges::paper(),
            filter: Some(FilterConfig::default()),
            backend: LabelBackend::default(),
        }
    }
}

impl AutoLabelConfig {
    /// Labels raw imagery without the cloud/shadow filter.
    pub fn unfiltered() -> Self {
        Self {
            filter: None,
            ..Self::default()
        }
    }

    /// Labels with the filter tuned for `side`-pixel tiles.
    pub fn filtered_for_tile(side: usize) -> Self {
        Self {
            filter: Some(FilterConfig::for_tile(side)),
            ..Self::default()
        }
    }

    /// The same configuration with a different segmentation backend.
    pub fn with_backend(self, backend: LabelBackend) -> Self {
        Self { backend, ..self }
    }
}

/// The auto-labeler's products for one image.
#[derive(Clone, Debug)]
pub struct LabelOutput {
    /// Single-channel class mask (0 = thick, 1 = thin, 2 = water).
    pub class_mask: Image<u8>,
    /// Color-coded label image (red/blue/green, Fig. 4 convention).
    pub color_label: Image<u8>,
    /// The image segmentation actually ran on (filtered when a filter is
    /// configured, otherwise a copy of the input).
    pub processed: Image<u8>,
}

/// Runs the configured preprocessing, reusing `scratch` buffers where the
/// result permits it.
fn preprocess(rgb: &Image<u8>, cfg: &AutoLabelConfig, scratch: &mut Scratch) -> Image<u8> {
    match &cfg.filter {
        Some(fc) => CloudShadowFilter::new(*fc).apply_keep_filtered(rgb, scratch),
        None => {
            let mut p = scratch.take_image(rgb.width(), rgb.height(), 3);
            p.as_mut_slice().copy_from_slice(rgb.as_slice());
            p
        }
    }
}

/// Segments `processed` into a class mask and color label with the
/// configured backend.
fn segment_both(
    processed: &Image<u8>,
    cfg: &AutoLabelConfig,
    scratch: &mut Scratch,
) -> (Image<u8>, Image<u8>) {
    match cfg.backend {
        LabelBackend::Reference => {
            let mask = segment_classes(processed, &cfg.ranges);
            let color = segment_to_color(&mask);
            (mask, color)
        }
        LabelBackend::Fused => {
            let (w, h) = processed.dimensions();
            let mut mask = scratch.take_image(w, h, 1);
            let mut color = scratch.take_image(w, h, 3);
            segment_into(
                processed,
                &ClassLut::new(&cfg.ranges),
                &mut mask,
                Some(&mut color),
            );
            (mask, color)
        }
    }
}

/// Labeling throughput counters. Inert — a branch on a `None` — when
/// metrics are disabled, so the deterministic labeling path is
/// byte-identical either way; these count work, they never time it
/// (ns/tile figures come from the bench layer, which owns the clock).
fn obs_counters() -> (seaice_obs::Counter, seaice_obs::Counter) {
    let m = seaice_obs::metrics();
    (m.counter("label.tiles"), m.counter("label.pixels"))
}

/// Auto-labels one RGB image.
pub fn auto_label(rgb: &Image<u8>, cfg: &AutoLabelConfig) -> LabelOutput {
    auto_label_scratch(rgb, cfg, &mut Scratch::new())
}

/// Auto-labels one RGB image, drawing tile-sized buffers from (and
/// donating discarded intermediates to) a caller-owned [`Scratch`]. Batch
/// drivers hand each worker one scratch so consecutive tiles reuse the
/// same allocations.
pub fn auto_label_scratch(
    rgb: &Image<u8>,
    cfg: &AutoLabelConfig,
    scratch: &mut Scratch,
) -> LabelOutput {
    let (tiles, pixels) = obs_counters();
    tiles.incr(1);
    pixels.incr((rgb.width() * rgb.height()) as u64);
    let processed = preprocess(rgb, cfg, scratch);
    let (class_mask, color_label) = segment_both(&processed, cfg, scratch);
    LabelOutput {
        class_mask,
        color_label,
        processed,
    }
}

/// Computes only the class mask for one RGB image — the shape consumers
/// like U-Net training-sample construction need. The processed image and
/// color label are never materialized for the caller, so their buffers
/// recycle through `scratch` and consecutive tiles run allocation-free on
/// the fused backend.
pub fn auto_label_class_mask(
    rgb: &Image<u8>,
    cfg: &AutoLabelConfig,
    scratch: &mut Scratch,
) -> Image<u8> {
    let (tiles, pixels) = obs_counters();
    tiles.incr(1);
    pixels.incr((rgb.width() * rgb.height()) as u64);
    let processed = preprocess(rgb, cfg, scratch);
    let mask = match cfg.backend {
        LabelBackend::Reference => segment_classes(&processed, &cfg.ranges),
        LabelBackend::Fused => {
            let (w, h) = processed.dimensions();
            let mut mask = scratch.take_image(w, h, 1);
            segment_into(&processed, &ClassLut::new(&cfg.ranges), &mut mask, None);
            mask
        }
    };
    scratch.recycle_image(processed);
    mask
}

/// Sequentially auto-labels a batch (the Table I baseline).
pub fn auto_label_batch(images: &[Image<u8>], cfg: &AutoLabelConfig) -> Vec<LabelOutput> {
    let mut scratch = Scratch::new();
    images
        .iter()
        .map(|img| auto_label_scratch(img, cfg, &mut scratch))
        .collect()
}

/// Auto-labels a batch on a fixed worker pool — the Python
/// `multiprocessing` analog driving Table I / Fig. 10.
pub fn auto_label_batch_pool(
    pool: &WorkerPool,
    images: Vec<Image<u8>>,
    cfg: AutoLabelConfig,
) -> Vec<LabelOutput> {
    pool.map(images, move |img| {
        thread_local! {
            static SCRATCH: std::cell::RefCell<Scratch> =
                std::cell::RefCell::new(Scratch::new());
        }
        SCRATCH.with(|s| auto_label_scratch(&img, &cfg, &mut s.borrow_mut()))
    })
}

/// Auto-labels a batch with rayon work stealing (the idiomatic Rust
/// data-parallel path; used where the experiment does not need a fixed
/// worker count).
pub fn auto_label_batch_rayon(images: &[Image<u8>], cfg: &AutoLabelConfig) -> Vec<LabelOutput> {
    images
        .par_iter()
        .map_init(Scratch::new, |scratch, img| {
            auto_label_scratch(img, cfg, scratch)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::IceClass;
    use seaice_s2::synth::{generate, SceneConfig};

    fn tri_band(side: usize) -> Image<u8> {
        Image::from_fn(side, side, 3, |x, _| {
            if x < side / 3 {
                vec![230, 233, 238]
            } else if x < 2 * side / 3 {
                vec![100, 112, 122]
            } else {
                vec![8, 12, 18]
            }
        })
    }

    #[test]
    fn labeling_counts_tiles_and_pixels_when_metrics_enabled() {
        let m = seaice_obs::enable_metrics();
        let tiles_before = m.counter("label.tiles").get();
        let pixels_before = m.counter("label.pixels").get();
        let img = tri_band(24);
        let _ = auto_label(&img, &AutoLabelConfig::unfiltered());
        let _ = auto_label_class_mask(&img, &AutoLabelConfig::unfiltered(), &mut Scratch::new());
        assert!(m.counter("label.tiles").get() >= tiles_before + 2);
        assert!(m.counter("label.pixels").get() >= pixels_before + 2 * 24 * 24);
    }

    #[test]
    fn unfiltered_labeling_matches_direct_segmentation() {
        let img = tri_band(24);
        let out = auto_label(&img, &AutoLabelConfig::unfiltered());
        assert_eq!(out.processed, img);
        assert_eq!(out.class_mask.get(0, 0), IceClass::Thick as u8);
        assert_eq!(out.class_mask.get(23, 0), IceClass::Water as u8);
        assert_eq!(out.color_label.pixel(0, 0), &[255, 0, 0]);
    }

    #[test]
    fn filtered_labeling_runs_the_filter() {
        let img = tri_band(48);
        let out = auto_label(&img, &AutoLabelConfig::filtered_for_tile(48));
        assert_eq!(out.class_mask.dimensions(), (48, 48));
        // Clean synthetic bands survive the filter with identical labels.
        let unf = auto_label(&img, &AutoLabelConfig::unfiltered());
        let agree = out
            .class_mask
            .as_slice()
            .iter()
            .zip(unf.class_mask.as_slice())
            .filter(|(a, b)| a == b)
            .count();
        assert!(agree as f64 / (48.0 * 48.0) > 0.97);
    }

    #[test]
    fn batch_variants_agree() {
        let images: Vec<_> = (0..6)
            .map(|i| generate(&SceneConfig::tiny(32), i).rgb)
            .collect();
        let cfg = AutoLabelConfig::unfiltered();
        let seq = auto_label_batch(&images, &cfg);
        let ray = auto_label_batch_rayon(&images, &cfg);
        let pool = WorkerPool::new(3);
        let pooled = auto_label_batch_pool(&pool, images.clone(), cfg);
        for i in 0..images.len() {
            assert_eq!(
                seq[i].class_mask, ray[i].class_mask,
                "rayon mismatch at {i}"
            );
            assert_eq!(
                seq[i].class_mask, pooled[i].class_mask,
                "pool mismatch at {i}"
            );
        }
    }

    #[test]
    fn backends_agree_on_synthetic_scenes() {
        for seed in 0..4 {
            let scene = generate(&SceneConfig::tiny(48), 300 + seed);
            for cfg in [
                AutoLabelConfig::unfiltered(),
                AutoLabelConfig::filtered_for_tile(48),
            ] {
                let fused = auto_label(&scene.rgb, &cfg.with_backend(LabelBackend::Fused));
                let reference = auto_label(&scene.rgb, &cfg.with_backend(LabelBackend::Reference));
                assert_eq!(fused.class_mask, reference.class_mask, "seed {seed}");
                assert_eq!(fused.color_label, reference.color_label, "seed {seed}");
                assert_eq!(fused.processed, reference.processed, "seed {seed}");
            }
        }
    }

    #[test]
    fn class_mask_only_path_matches_full_output() {
        let scene = generate(&SceneConfig::tiny(32), 9);
        let mut scratch = seaice_imgproc::buffer::Scratch::new();
        for cfg in [
            AutoLabelConfig::unfiltered(),
            AutoLabelConfig::unfiltered().with_backend(LabelBackend::Reference),
            AutoLabelConfig::filtered_for_tile(32),
        ] {
            let mask = auto_label_class_mask(&scene.rgb, &cfg, &mut scratch);
            assert_eq!(mask, auto_label(&scene.rgb, &cfg).class_mask);
        }
    }

    #[test]
    fn scratch_buffers_recycle_across_tiles() {
        // After the first unfiltered mask-only tile, the processed copy is
        // recycled; the second tile must find it in the pool.
        let imgs: Vec<_> = (0..3)
            .map(|i| generate(&SceneConfig::tiny(16), 40 + i).rgb)
            .collect();
        let mut scratch = seaice_imgproc::buffer::Scratch::new();
        let cfg = AutoLabelConfig::unfiltered();
        let first = auto_label_class_mask(&imgs[0], &cfg, &mut scratch);
        assert!(scratch.pooled().0 >= 1, "processed buffer not recycled");
        let baseline = scratch.pooled().0;
        let _ = auto_label_class_mask(&imgs[1], &cfg, &mut scratch);
        let _ = auto_label_class_mask(&imgs[2], &cfg, &mut scratch);
        // Steady state: the pool stops growing once tiles reuse buffers.
        assert!(scratch.pooled().0 <= baseline + 1, "pool grew per tile");
        assert_eq!(first, auto_label(&imgs[0], &cfg).class_mask);
    }

    #[test]
    fn auto_label_on_synthetic_scene_matches_truth() {
        let scene = generate(&SceneConfig::tiny(96), 21);
        let out = auto_label(&scene.rgb, &AutoLabelConfig::unfiltered());
        let correct = out
            .class_mask
            .as_slice()
            .iter()
            .zip(scene.truth.as_slice())
            .filter(|(a, b)| a == b)
            .count();
        let acc = correct as f64 / scene.truth.as_slice().len() as f64;
        // Clean scenes are rendered inside the calibrated HSV ranges, so
        // color segmentation recovers the truth essentially exactly.
        assert!(acc > 0.999, "clean-scene auto-label accuracy {acc}");
    }
}
