//! End-to-end auto-labeling (Fig. 6): optional thin-cloud/shadow
//! filtering, then HSV color-threshold segmentation, producing the class
//! mask and the color-coded label image used as U-Net training data.

use crate::cloudshadow::{CloudShadowFilter, FilterConfig};
use crate::parallel::WorkerPool;
use crate::ranges::ClassRanges;
use crate::segment::{segment_classes, segment_to_color};
use rayon::prelude::*;
use seaice_imgproc::buffer::Image;
use serde::{Deserialize, Serialize};

/// Auto-labeling configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AutoLabelConfig {
    /// HSV class thresholds (defaults to the paper's calibration).
    pub ranges: ClassRanges,
    /// Thin-cloud/shadow filter settings; `None` labels the raw image
    /// (the paper's "original S2 images" arm).
    pub filter: Option<FilterConfig>,
}

impl Default for AutoLabelConfig {
    fn default() -> Self {
        Self {
            ranges: ClassRanges::paper(),
            filter: Some(FilterConfig::default()),
        }
    }
}

impl AutoLabelConfig {
    /// Labels raw imagery without the cloud/shadow filter.
    pub fn unfiltered() -> Self {
        Self {
            ranges: ClassRanges::paper(),
            filter: None,
        }
    }

    /// Labels with the filter tuned for `side`-pixel tiles.
    pub fn filtered_for_tile(side: usize) -> Self {
        Self {
            ranges: ClassRanges::paper(),
            filter: Some(FilterConfig::for_tile(side)),
        }
    }
}

/// The auto-labeler's products for one image.
#[derive(Clone, Debug)]
pub struct LabelOutput {
    /// Single-channel class mask (0 = thick, 1 = thin, 2 = water).
    pub class_mask: Image<u8>,
    /// Color-coded label image (red/blue/green, Fig. 4 convention).
    pub color_label: Image<u8>,
    /// The image segmentation actually ran on (filtered when a filter is
    /// configured, otherwise a copy of the input).
    pub processed: Image<u8>,
}

/// Auto-labels one RGB image.
pub fn auto_label(rgb: &Image<u8>, cfg: &AutoLabelConfig) -> LabelOutput {
    let processed = match &cfg.filter {
        Some(fc) => CloudShadowFilter::new(*fc).apply(rgb).filtered,
        None => rgb.clone(),
    };
    let class_mask = segment_classes(&processed, &cfg.ranges);
    let color_label = segment_to_color(&class_mask);
    LabelOutput {
        class_mask,
        color_label,
        processed,
    }
}

/// Sequentially auto-labels a batch (the Table I baseline).
pub fn auto_label_batch(images: &[Image<u8>], cfg: &AutoLabelConfig) -> Vec<LabelOutput> {
    images.iter().map(|img| auto_label(img, cfg)).collect()
}

/// Auto-labels a batch on a fixed worker pool — the Python
/// `multiprocessing` analog driving Table I / Fig. 10.
pub fn auto_label_batch_pool(
    pool: &WorkerPool,
    images: Vec<Image<u8>>,
    cfg: AutoLabelConfig,
) -> Vec<LabelOutput> {
    pool.map(images, move |img| auto_label(&img, &cfg))
}

/// Auto-labels a batch with rayon work stealing (the idiomatic Rust
/// data-parallel path; used where the experiment does not need a fixed
/// worker count).
pub fn auto_label_batch_rayon(images: &[Image<u8>], cfg: &AutoLabelConfig) -> Vec<LabelOutput> {
    images.par_iter().map(|img| auto_label(img, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::IceClass;
    use seaice_s2::synth::{generate, SceneConfig};

    fn tri_band(side: usize) -> Image<u8> {
        Image::from_fn(side, side, 3, |x, _| {
            if x < side / 3 {
                vec![230, 233, 238]
            } else if x < 2 * side / 3 {
                vec![100, 112, 122]
            } else {
                vec![8, 12, 18]
            }
        })
    }

    #[test]
    fn unfiltered_labeling_matches_direct_segmentation() {
        let img = tri_band(24);
        let out = auto_label(&img, &AutoLabelConfig::unfiltered());
        assert_eq!(out.processed, img);
        assert_eq!(out.class_mask.get(0, 0), IceClass::Thick as u8);
        assert_eq!(out.class_mask.get(23, 0), IceClass::Water as u8);
        assert_eq!(out.color_label.pixel(0, 0), &[255, 0, 0]);
    }

    #[test]
    fn filtered_labeling_runs_the_filter() {
        let img = tri_band(48);
        let out = auto_label(&img, &AutoLabelConfig::filtered_for_tile(48));
        assert_eq!(out.class_mask.dimensions(), (48, 48));
        // Clean synthetic bands survive the filter with identical labels.
        let unf = auto_label(&img, &AutoLabelConfig::unfiltered());
        let agree = out
            .class_mask
            .as_slice()
            .iter()
            .zip(unf.class_mask.as_slice())
            .filter(|(a, b)| a == b)
            .count();
        assert!(agree as f64 / (48.0 * 48.0) > 0.97);
    }

    #[test]
    fn batch_variants_agree() {
        let images: Vec<_> = (0..6)
            .map(|i| generate(&SceneConfig::tiny(32), i).rgb)
            .collect();
        let cfg = AutoLabelConfig::unfiltered();
        let seq = auto_label_batch(&images, &cfg);
        let ray = auto_label_batch_rayon(&images, &cfg);
        let pool = WorkerPool::new(3);
        let pooled = auto_label_batch_pool(&pool, images.clone(), cfg);
        for i in 0..images.len() {
            assert_eq!(seq[i].class_mask, ray[i].class_mask, "rayon mismatch at {i}");
            assert_eq!(seq[i].class_mask, pooled[i].class_mask, "pool mismatch at {i}");
        }
    }

    #[test]
    fn auto_label_on_synthetic_scene_matches_truth() {
        let scene = generate(&SceneConfig::tiny(96), 21);
        let out = auto_label(&scene.rgb, &AutoLabelConfig::unfiltered());
        let correct = out
            .class_mask
            .as_slice()
            .iter()
            .zip(scene.truth.as_slice())
            .filter(|(a, b)| a == b)
            .count();
        let acc = correct as f64 / scene.truth.as_slice().len() as f64;
        // Clean scenes are rendered inside the calibrated HSV ranges, so
        // color segmentation recovers the truth essentially exactly.
        assert!(acc > 0.999, "clean-scene auto-label accuracy {acc}");
    }
}
