//! Fused single-pass auto-label kernel.
//!
//! The reference segmentation path materializes a full HSV image
//! (`rgb_to_hsv`) and then classifies it pixel-by-pixel with three range
//! comparisons per class ([`segment_classes`](crate::segment::segment_classes)).
//! This module fuses both stages into one loop over the RGB tile:
//!
//! 1. each pixel converts to OpenCV HSV with integer math
//!    ([`rgb_pixel_to_hsv_int`]), bit-identical to the `f32` reference;
//! 2. class membership is looked up in three precomputed 256-entry
//!    per-channel bitmask tables — bit `k` of `h_lut[h]` is set when hue
//!    `h` lies inside class `k`'s hue bounds, and a pixel's class is the
//!    lowest set bit of `h_lut[h] & s_lut[s] & v_lut[v]`;
//! 3. pixels matching no class (possible only with non-paper custom
//!    ranges) fall back to a 256-entry nearest-V table that replicates
//!    [`ClassRanges::classify`]'s gap handling.
//!
//! No intermediate image is allocated, and the optional color label is
//! written in the same pass. Bit-identity with the reference path over all
//! 2^24 RGB inputs is enforced by `tests/fused_vs_reference.rs`.

use crate::ranges::{ClassRanges, IceClass};
use rayon::prelude::*;
use seaice_imgproc::buffer::Image;
use seaice_imgproc::color::rgb_pixel_to_hsv_int;

/// Precomputed per-channel class-membership tables for one [`ClassRanges`].
///
/// Building one costs three 256-entry scans; amortize it over at least a
/// row of pixels (every public entry point here does).
#[derive(Clone, Debug)]
pub struct ClassLut {
    h: [u8; 256],
    s: [u8; 256],
    v: [u8; 256],
    /// Nearest-V class for pixels outside every range (gap fallback).
    fallback: [u8; 256],
}

impl ClassLut {
    /// Builds the tables from a set of class ranges.
    pub fn new(ranges: &ClassRanges) -> Self {
        let mut h = [0u8; 256];
        let mut s = [0u8; 256];
        let mut v = [0u8; 256];
        for class in IceClass::ALL {
            let r = ranges.range(class);
            // seaice-lint: allow(narrowing-cast-in-kernel) reason="IceClass has three discriminants (0..=2), well within u8"
            let bit = 1u8 << (class as u8);
            for x in 0..=255usize {
                // seaice-lint: allow(narrowing-cast-in-kernel) reason="the loop bound pins x <= 255, exactly the u8 range"
                let xv = x as u8;
                if xv >= r.lo[0] && xv <= r.hi[0] {
                    h[x] |= bit;
                }
                if xv >= r.lo[1] && xv <= r.hi[1] {
                    s[x] |= bit;
                }
                if xv >= r.lo[2] && xv <= r.hi[2] {
                    v[x] |= bit;
                }
            }
        }
        let mut fallback = [0u8; 256];
        for (x, slot) in fallback.iter_mut().enumerate() {
            // Replicates the reference `min_by_key` over V distance,
            // including its first-minimum-wins tie behavior.
            let xv = x as i32;
            let mut best = IceClass::Thick;
            let mut best_d = i32::MAX;
            for class in IceClass::ALL {
                let r = ranges.range(class);
                let (lo, hi) = (r.lo[2] as i32, r.hi[2] as i32);
                let d = if xv < lo {
                    lo - xv
                } else if xv > hi {
                    xv - hi
                } else {
                    0
                };
                if d < best_d {
                    best_d = d;
                    best = class;
                }
            }
            // seaice-lint: allow(narrowing-cast-in-kernel) reason="IceClass has three discriminants (0..=2), well within u8"
            *slot = best as u8;
        }
        Self { h, s, v, fallback }
    }

    /// Classifies one HSV pixel; equivalent to
    /// [`ClassRanges::classify`] on the same ranges.
    #[inline]
    pub fn classify(&self, h: u8, s: u8, v: u8) -> u8 {
        let m = self.h[h as usize] & self.s[s as usize] & self.v[v as usize];
        if m != 0 {
            m.trailing_zeros() as u8
        } else {
            self.fallback[v as usize]
        }
    }

    /// Classifies one RGB pixel (integer HSV conversion + table lookup).
    #[inline]
    pub fn classify_rgb(&self, r: u8, g: u8, b: u8) -> u8 {
        let [h, s, v] = rgb_pixel_to_hsv_int(r, g, b);
        self.classify(h, s, v)
    }
}

/// The paper's label palette indexed by class (red / blue / green).
const PALETTE: [[u8; 3]; 3] = [
    IceClass::Thick.color(),
    IceClass::Thin.color(),
    IceClass::Water.color(),
];

/// Labels a run of interleaved RGB samples into a class-mask run and,
/// optionally, a color-label run — the scalar core of the fused kernel.
///
/// # Panics
/// Panics (debug) if slice lengths disagree.
#[inline]
pub fn fused_label_run(rgb: &[u8], mask: &mut [u8], mut color: Option<&mut [u8]>, lut: &ClassLut) {
    debug_assert_eq!(rgb.len(), mask.len() * 3);
    for (i, (d, px)) in mask.iter_mut().zip(rgb.chunks_exact(3)).enumerate() {
        let c = lut.classify_rgb(px[0], px[1], px[2]);
        *d = c;
        if let Some(out) = color.as_deref_mut() {
            out[i * 3..i * 3 + 3].copy_from_slice(&PALETTE[c as usize]);
        }
    }
}

/// Fused segmentation into caller-provided buffers (row-parallel).
///
/// `mask` must be single-channel and `color`, when given, 3-channel; both
/// must match `rgb`'s dimensions.
///
/// # Panics
/// Panics on shape mismatches or a non-RGB input.
pub fn segment_into(
    rgb: &Image<u8>,
    lut: &ClassLut,
    mask: &mut Image<u8>,
    color: Option<&mut Image<u8>>,
) {
    assert_eq!(rgb.channels(), 3, "fused segmentation expects RGB");
    assert_eq!(mask.dimensions(), rgb.dimensions(), "mask size mismatch");
    assert_eq!(mask.channels(), 1, "mask must be single-channel");
    let w = rgb.width().max(1);
    match color {
        Some(color) => {
            assert_eq!(color.dimensions(), rgb.dimensions(), "color size mismatch");
            assert_eq!(color.channels(), 3, "color label must be RGB");
            mask.as_mut_slice()
                .par_chunks_exact_mut(w)
                .zip(color.as_mut_slice().par_chunks_exact_mut(w * 3))
                .zip(rgb.as_slice().par_chunks_exact(w * 3))
                .for_each(|((mask_row, color_row), rgb_row)| {
                    fused_label_run(rgb_row, mask_row, Some(color_row), lut);
                });
        }
        None => {
            mask.as_mut_slice()
                .par_chunks_exact_mut(w)
                .zip(rgb.as_slice().par_chunks_exact(w * 3))
                .for_each(|(mask_row, rgb_row)| {
                    fused_label_run(rgb_row, mask_row, None, lut);
                });
        }
    }
}

/// Fused drop-in for [`segment_classes`](crate::segment::segment_classes):
/// RGB straight to a class mask, no intermediate HSV image.
pub fn segment_classes_fused(rgb: &Image<u8>, ranges: &ClassRanges) -> Image<u8> {
    let (w, h) = rgb.dimensions();
    let mut mask = Image::<u8>::new(w, h, 1);
    segment_into(rgb, &ClassLut::new(ranges), &mut mask, None);
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::HsvRange;
    use crate::segment::{segment_classes, segment_to_color};

    #[test]
    fn lut_classify_matches_reference_on_grid() {
        let ranges = ClassRanges::paper();
        let lut = ClassLut::new(&ranges);
        for h in (0..=255u8).step_by(5) {
            for s in (0..=255u8).step_by(5) {
                for v in 0..=255u8 {
                    assert_eq!(
                        lut.classify(h, s, v),
                        ranges.classify(&[h, s, v]) as u8,
                        "mismatch at hsv ({h},{s},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn lut_fallback_matches_reference_in_gaps() {
        // Custom ranges with a V hole between 100 and 149.
        let ranges = ClassRanges {
            water: HsvRange {
                lo: [0, 0, 0],
                hi: [185, 255, 99],
            },
            thin: HsvRange {
                lo: [0, 0, 150],
                hi: [185, 255, 200],
            },
            thick: HsvRange {
                lo: [0, 0, 201],
                hi: [185, 255, 255],
            },
        };
        let lut = ClassLut::new(&ranges);
        for v in 0..=255u8 {
            assert_eq!(
                lut.classify(90, 10, v),
                ranges.classify(&[90, 10, v]) as u8,
                "gap fallback mismatch at v={v}"
            );
        }
    }

    #[test]
    fn fused_segmentation_matches_reference_image_level() {
        let img = Image::from_fn(97, 13, 3, |x, y| {
            vec![
                ((x * 7 + y) % 256) as u8,
                ((x + y * 11) % 256) as u8,
                ((x * 3 + y * 5) % 256) as u8,
            ]
        });
        let ranges = ClassRanges::paper();
        assert_eq!(
            segment_classes_fused(&img, &ranges),
            segment_classes(&img, &ranges)
        );
    }

    #[test]
    fn fused_color_output_matches_palette_render() {
        let img = Image::from_fn(33, 9, 3, |x, y| {
            vec![(x * 8) as u8, (y * 25) as u8, ((x + y) * 6) as u8]
        });
        let ranges = ClassRanges::paper();
        let lut = ClassLut::new(&ranges);
        let (w, h) = img.dimensions();
        let mut mask = Image::<u8>::new(w, h, 1);
        let mut color = Image::<u8>::new(w, h, 3);
        segment_into(&img, &lut, &mut mask, Some(&mut color));
        assert_eq!(mask, segment_classes(&img, &ranges));
        assert_eq!(color, segment_to_color(&mask));
    }

    #[test]
    fn large_image_takes_parallel_rows_and_agrees() {
        let img = Image::from_fn(128, 128, 3, |x, y| {
            vec![(x % 256) as u8, (y % 256) as u8, ((x * y) % 256) as u8]
        });
        let ranges = ClassRanges::paper();
        assert_eq!(
            segment_classes_fused(&img, &ranges),
            segment_classes(&img, &ranges)
        );
    }

    #[test]
    #[should_panic(expected = "mask size mismatch")]
    fn shape_mismatch_panics() {
        let img = Image::<u8>::new(4, 4, 3);
        let mut mask = Image::<u8>::new(3, 4, 1);
        segment_into(&img, &ClassLut::new(&ClassRanges::paper()), &mut mask, None);
    }
}
