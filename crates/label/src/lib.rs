//! # seaice-label
//!
//! The paper's auto-labeling contribution: thin-cloud and cloud-shadow
//! filtering followed by HSV color-threshold segmentation of Sentinel-2
//! polar imagery into thick ice, thin ice, and open water.
//!
//! * [`ranges`] — the calibrated HSV class thresholds from §III-B,
//! * [`cloudshadow`] — the thin-cloud/shadow filter built from the OpenCV
//!   ops the paper lists (HSV conversion, noise filtering, bit-wise ops,
//!   absolute difference, Otsu / truncated / binary thresholding, min-max
//!   normalization),
//! * [`segment`] — per-class `inRange` masks merged into a color-coded
//!   label image,
//! * [`fused`] — the single-pass integer/LUT segmentation kernel,
//!   bit-identical to [`segment`] and ~an order of magnitude cheaper,
//! * [`autolabel`] — the end-to-end per-image auto-label routine plus
//!   sequential and rayon batch drivers,
//! * [`parallel`] — a fixed worker pool (the Python-multiprocessing
//!   analog) used by the Table I speedup experiment.
//!
//! ```
//! use seaice_label::prelude::*;
//! use seaice_imgproc::buffer::Image;
//!
//! let mut img = Image::<u8>::new(8, 8, 3);
//! img.fill(&[230, 235, 240]); // bright: thick ice
//! let out = auto_label(&img, &AutoLabelConfig::default());
//! assert!(out.class_mask.as_slice().iter().all(|&c| c == IceClass::Thick as u8));
//! ```
#![forbid(unsafe_code)]

pub mod autolabel;
pub mod calibrate;
pub mod cloudshadow;
pub mod fused;
pub mod parallel;
pub mod ranges;
pub mod segment;

/// Common imports for auto-labeling.
pub mod prelude {
    pub use crate::autolabel::{
        auto_label, auto_label_batch, auto_label_batch_rayon, auto_label_class_mask,
        auto_label_scratch, AutoLabelConfig, LabelBackend, LabelOutput,
    };
    pub use crate::calibrate::{calibrate, Calibration};
    pub use crate::cloudshadow::{CloudShadowFilter, FilterConfig, FilterOutput};
    pub use crate::fused::{segment_classes_fused, ClassLut};
    pub use crate::parallel::WorkerPool;
    pub use crate::ranges::{ClassRanges, HsvRange, IceClass};
    pub use crate::segment::{color_to_classes, segment_classes, segment_to_color};
}
