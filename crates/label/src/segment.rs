//! Color-based segmentation: per-class `inRange` masks merged into a
//! class mask and a color-coded label image (§III-B, Fig. 6).

use crate::ranges::{ClassRanges, IceClass};
use rayon::prelude::*;
use seaice_imgproc::buffer::Image;
use seaice_imgproc::color::rgb_to_hsv;
use seaice_imgproc::ops::in_range;

/// Builds the three binary class masks (255 inside) from an RGB image,
/// exactly as the paper does with `cv2.inRange` on the HSV conversion.
///
/// Returned in class order: `[thick, thin, water]`.
pub fn class_masks(rgb: &Image<u8>, ranges: &ClassRanges) -> [Image<u8>; 3] {
    let hsv = rgb_to_hsv(rgb);
    let make = |c: IceClass| {
        let r = ranges.range(c);
        in_range(&hsv, &r.lo, &r.hi)
    };
    [
        make(IceClass::Thick),
        make(IceClass::Thin),
        make(IceClass::Water),
    ]
}

/// Segments an RGB image into a single-channel class mask using the HSV
/// thresholds (one pass, no intermediate masks — the merged equivalent of
/// [`class_masks`]).
pub fn segment_classes(rgb: &Image<u8>, ranges: &ClassRanges) -> Image<u8> {
    assert_eq!(rgb.channels(), 3, "segmentation expects an RGB image");
    let hsv = rgb_to_hsv(rgb);
    let (w, h) = rgb.dimensions();
    let mut mask = Image::<u8>::new(w, h, 1);
    mask.as_mut_slice()
        .par_chunks_exact_mut(w.max(1))
        .zip(hsv.as_slice().par_chunks_exact(w.max(1) * 3))
        .for_each(|(dst, src)| {
            for (d, px) in dst.iter_mut().zip(src.chunks_exact(3)) {
                // seaice-lint: allow(narrowing-cast-in-kernel) reason="IceClass has three discriminants (0..=2), well within u8"
                *d = ranges.classify(px) as u8;
            }
        });
    mask
}

/// Renders a class mask as the paper's color-coded label image (red =
/// thick ice, blue = thin ice, green = open water).
///
/// # Panics
/// Panics if the mask is not single-channel or contains invalid classes.
pub fn segment_to_color(mask: &Image<u8>) -> Image<u8> {
    assert_eq!(mask.channels(), 1, "expected a class mask");
    let (w, h) = mask.dimensions();
    let mut out = Image::<u8>::new(w, h, 3);
    for (dst, &c) in out.as_mut_slice().chunks_exact_mut(3).zip(mask.as_slice()) {
        // seaice-lint: allow(panic-in-library) reason="documented panicking API (# Panics above): a mask with out-of-range classes is corrupt input, named in the message"
        let class = IceClass::from_index(c).expect("invalid class index in mask");
        dst.copy_from_slice(&class.color());
    }
    out
}

/// Inverse of [`segment_to_color`]: recovers the class mask from a
/// color-coded label image. Unknown colors fall back to the class whose
/// label color is nearest in RGB space (robust to antialiased edges in
/// externally produced labels).
pub fn color_to_classes(label: &Image<u8>) -> Image<u8> {
    assert_eq!(label.channels(), 3, "expected a color label image");
    let (w, h) = label.dimensions();
    let mut out = Image::<u8>::new(w, h, 1);
    for (d, px) in out
        .as_mut_slice()
        .iter_mut()
        .zip(label.as_slice().chunks_exact(3))
    {
        *d = match IceClass::from_color(px) {
            // seaice-lint: allow(narrowing-cast-in-kernel) reason="IceClass has three discriminants (0..=2), well within u8"
            Some(c) => c as u8,
            None => IceClass::ALL
                .into_iter()
                .min_by_key(|c| {
                    let col = c.color();
                    px.iter()
                        .zip(col.iter())
                        .map(|(&a, &b)| (a as i32 - b as i32).pow(2))
                        .sum::<i32>()
                })
                // seaice-lint: allow(panic-in-library, narrowing-cast-in-kernel) reason="min_by_key runs over IceClass::ALL, a non-empty const array, and its three discriminants (0..=2) fit u8"
                .expect("nonempty class list") as u8,
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri_band_image() -> Image<u8> {
        // Three vertical bands: bright (thick), mid (thin), dark (water).
        Image::from_fn(9, 3, 3, |x, _| {
            if x < 3 {
                vec![230, 233, 238]
            } else if x < 6 {
                vec![100, 112, 122]
            } else {
                vec![8, 12, 18]
            }
        })
    }

    #[test]
    fn segment_assigns_expected_classes() {
        let mask = segment_classes(&tri_band_image(), &ClassRanges::paper());
        assert_eq!(mask.get(0, 0), IceClass::Thick as u8);
        assert_eq!(mask.get(4, 1), IceClass::Thin as u8);
        assert_eq!(mask.get(8, 2), IceClass::Water as u8);
    }

    #[test]
    fn masks_partition_the_image() {
        let [thick, thin, water] = class_masks(&tri_band_image(), &ClassRanges::paper());
        for i in 0..thick.as_slice().len() {
            let hits = [&thick, &thin, &water]
                .iter()
                .filter(|m| m.as_slice()[i] == 255)
                .count();
            assert_eq!(hits, 1, "pixel {i} in {hits} masks");
        }
    }

    #[test]
    fn masks_agree_with_merged_segmentation() {
        let img = tri_band_image();
        let ranges = ClassRanges::paper();
        let [thick, thin, water] = class_masks(&img, &ranges);
        let merged = segment_classes(&img, &ranges);
        for (i, &c) in merged.as_slice().iter().enumerate() {
            let expected = match c {
                0 => &thick,
                1 => &thin,
                _ => &water,
            };
            assert_eq!(expected.as_slice()[i], 255);
        }
    }

    #[test]
    fn color_roundtrip() {
        let mask = segment_classes(&tri_band_image(), &ClassRanges::paper());
        let color = segment_to_color(&mask);
        assert_eq!(color_to_classes(&color), mask);
    }

    #[test]
    fn color_render_uses_paper_palette() {
        let mask = Image::from_vec(3, 1, 1, vec![0u8, 1, 2]);
        let color = segment_to_color(&mask);
        assert_eq!(color.pixel(0, 0), &[255, 0, 0]); // thick = red
        assert_eq!(color.pixel(1, 0), &[0, 0, 255]); // thin = blue
        assert_eq!(color.pixel(2, 0), &[0, 255, 0]); // water = green
    }

    #[test]
    fn unknown_colors_snap_to_nearest_class() {
        let label = Image::from_vec(2, 1, 3, vec![250, 10, 10, 10, 240, 30]);
        let mask = color_to_classes(&label);
        assert_eq!(mask.get(0, 0), IceClass::Thick as u8);
        assert_eq!(mask.get(1, 0), IceClass::Water as u8);
    }
}
