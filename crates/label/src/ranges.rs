//! Calibrated HSV class thresholds.
//!
//! §III-B of the paper: "the HSV lower and upper values for thick ice
//! range from (0, 0, 205) to (185, 255, 255). Similarly, for thin ice, the
//! HSV lower and upper values span from (0, 0, 31) to (185, 255, 204).
//! Lastly, the HSV lower and upper values for open water are defined as
//! (0, 0, 0) to (185, 255, 30)." The ranges partition the value axis, so
//! every pixel gets exactly one class.

use serde::{Deserialize, Serialize};

/// The three sea-ice surface classes, with discriminants matching the
/// class-mask indices used across the workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum IceClass {
    /// Thick / snow-covered ice (label color: red).
    Thick = 0,
    /// Thin / young ice (label color: blue).
    Thin = 1,
    /// Open water / leads (label color: green).
    Water = 2,
}

impl IceClass {
    /// All classes, in index order.
    pub const ALL: [IceClass; 3] = [IceClass::Thick, IceClass::Thin, IceClass::Water];

    /// Label color used in the paper's figures (Fig. 4): red for thick
    /// ice, blue for thin ice, green for open water.
    pub const fn color(self) -> [u8; 3] {
        match self {
            IceClass::Thick => [255, 0, 0],
            IceClass::Thin => [0, 0, 255],
            IceClass::Water => [0, 255, 0],
        }
    }

    /// Inverse of [`IceClass::color`]; `None` for any other pixel value.
    pub fn from_color(px: &[u8]) -> Option<IceClass> {
        match [px[0], px[1], px[2]] {
            [255, 0, 0] => Some(IceClass::Thick),
            [0, 0, 255] => Some(IceClass::Thin),
            [0, 255, 0] => Some(IceClass::Water),
            _ => None,
        }
    }

    /// Class from a mask index.
    pub fn from_index(i: u8) -> Option<IceClass> {
        match i {
            0 => Some(IceClass::Thick),
            1 => Some(IceClass::Thin),
            2 => Some(IceClass::Water),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            IceClass::Thick => "thick ice",
            IceClass::Thin => "thin ice",
            IceClass::Water => "open water",
        }
    }
}

/// An inclusive HSV box `[lo, hi]` (OpenCV conventions; the paper's upper
/// hue bound of 185 simply covers the whole `[0, 180)` hue circle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HsvRange {
    /// Lower inclusive HSV corner.
    pub lo: [u8; 3],
    /// Upper inclusive HSV corner.
    pub hi: [u8; 3],
}

impl HsvRange {
    /// True when the HSV pixel lies inside the box.
    #[inline]
    pub fn contains(&self, hsv: &[u8]) -> bool {
        hsv.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(&v, (&l, &h))| v >= l && v <= h)
    }
}

/// The per-class HSV ranges driving segmentation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassRanges {
    /// Thick / snow-covered ice range.
    pub thick: HsvRange,
    /// Thin / young ice range.
    pub thin: HsvRange,
    /// Open-water range.
    pub water: HsvRange,
}

impl Default for ClassRanges {
    fn default() -> Self {
        Self::paper()
    }
}

impl ClassRanges {
    /// The paper's calibrated ranges for Antarctic Ross Sea summer imagery.
    pub const fn paper() -> Self {
        Self {
            thick: HsvRange {
                lo: [0, 0, 205],
                hi: [185, 255, 255],
            },
            thin: HsvRange {
                lo: [0, 0, 31],
                hi: [185, 255, 204],
            },
            water: HsvRange {
                lo: [0, 0, 0],
                hi: [185, 255, 30],
            },
        }
    }

    /// Range for a class.
    pub fn range(&self, class: IceClass) -> &HsvRange {
        match class {
            IceClass::Thick => &self.thick,
            IceClass::Thin => &self.thin,
            IceClass::Water => &self.water,
        }
    }

    /// Classifies one HSV pixel. The paper's ranges partition the V axis,
    /// so exactly one class matches; if custom ranges leave a gap, the
    /// nearest class by V distance is chosen.
    pub fn classify(&self, hsv: &[u8]) -> IceClass {
        for class in IceClass::ALL {
            if self.range(class).contains(hsv) {
                return class;
            }
        }
        // Gap fallback: nearest V interval.
        let v = hsv[2] as i32;
        IceClass::ALL
            .into_iter()
            .min_by_key(|c| {
                let r = self.range(*c);
                let lo = r.lo[2] as i32;
                let hi = r.hi[2] as i32;
                if v < lo {
                    lo - v
                } else if v > hi {
                    v - hi
                } else {
                    0
                }
            })
            // seaice-lint: allow(panic-in-library) reason="min_by_key runs over IceClass::ALL, a non-empty const array, so it is always Some"
            .expect("nonempty class list")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ranges_partition_value_axis() {
        let r = ClassRanges::paper();
        // Every V in 0..=255 belongs to exactly one class (any H, S).
        for v in 0..=255u8 {
            let hsv = [90u8, 128, v];
            let hits = IceClass::ALL
                .into_iter()
                .filter(|c| r.range(*c).contains(&hsv))
                .count();
            assert_eq!(hits, 1, "V={v} matched {hits} classes");
        }
    }

    #[test]
    fn classify_boundaries() {
        let r = ClassRanges::paper();
        assert_eq!(r.classify(&[0, 0, 30]), IceClass::Water);
        assert_eq!(r.classify(&[0, 0, 31]), IceClass::Thin);
        assert_eq!(r.classify(&[0, 0, 204]), IceClass::Thin);
        assert_eq!(r.classify(&[0, 0, 205]), IceClass::Thick);
        assert_eq!(r.classify(&[0, 0, 255]), IceClass::Thick);
        assert_eq!(r.classify(&[0, 0, 0]), IceClass::Water);
    }

    #[test]
    fn classify_fills_gaps_with_nearest() {
        // A custom range set with a hole between 100 and 150.
        let r = ClassRanges {
            water: HsvRange {
                lo: [0, 0, 0],
                hi: [185, 255, 99],
            },
            thin: HsvRange {
                lo: [0, 0, 150],
                hi: [185, 255, 200],
            },
            thick: HsvRange {
                lo: [0, 0, 201],
                hi: [185, 255, 255],
            },
        };
        assert_eq!(r.classify(&[0, 0, 105]), IceClass::Water);
        assert_eq!(r.classify(&[0, 0, 145]), IceClass::Thin);
    }

    #[test]
    fn colors_roundtrip() {
        for c in IceClass::ALL {
            assert_eq!(IceClass::from_color(&c.color()), Some(c));
        }
        assert_eq!(IceClass::from_color(&[1, 2, 3]), None);
    }

    #[test]
    fn indices_roundtrip() {
        for c in IceClass::ALL {
            assert_eq!(IceClass::from_index(c as u8), Some(c));
        }
        assert_eq!(IceClass::from_index(3), None);
    }

    #[test]
    fn discriminants_match_s2_classes() {
        assert_eq!(IceClass::Thick as u8, 0);
        assert_eq!(IceClass::Thin as u8, 1);
        assert_eq!(IceClass::Water as u8, 2);
    }
}
