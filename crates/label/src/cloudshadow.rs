//! Thin-cloud and cloud-shadow filtering (§III-A "Filtering Out the Thin
//! Clouds and Shadows").
//!
//! The paper composes OpenCV primitives — RGB→HSV conversion, noise
//! filtering, bit-wise operations, absolute difference, Otsu / truncated /
//! binary thresholding, and min-max normalization — into a filter tuned by
//! trial and error on Ross Sea imagery. This module implements a filter
//! with the same building blocks and the same physical model:
//!
//! * **thin cloud** is additive haze toward white:
//!   `I' = I·(1 − a) + 255·a` with a smooth opacity field `a`;
//! * **shadow** is smooth multiplicative darkening: `I' = I·m`, `m ≤ 1`.
//!
//! **Haze estimation.** Sea-ice surface classes have stable chroma ratios
//! (open water and thin ice are distinctly blue-tinted; haze drags every
//! channel toward white and therefore *changes the ratios*). For a class
//! hypothesis with red/blue ratio `ρ`, the haze opacity follows in closed
//! form from two channels: `a = (R − ρB) / (255(1 − ρ))`; the green
//! channel then validates the hypothesis (predicted vs observed absolute
//! difference). Per-pixel estimates are confidence-weighted and smoothed
//! with a large box filter (haze fields are smooth), then inverted. Bright
//! thick ice is chromatically degenerate with haze — white looks like
//! cloud — so it yields no confident estimate and borrows the field from
//! its surroundings, exactly like the paper's trial-and-error thresholds
//! implicitly do.
//!
//! **Shadow correction.** After dehazing, shadowed thick ice is the
//! remaining failure mode (the paper's Fig. 13 shows thick ice read as
//! thin ice under shadow): pixels with *thick-ice chroma* (near-zero
//! saturation) but mid-range V must be darkened bright ice. Their implied
//! gain `m = V / V_thick` is pooled over a smoothed mask and inverted.
//!
//! The filter is intentionally conservative: clean pixels pass through
//! (beyond the mild median pre-filter), haze opacity is capped at what
//! *thin* cloud can reach, and corrections fade smoothly at mask borders.

use rayon::prelude::*;
use seaice_imgproc::buffer::Image;
use seaice_imgproc::color::rgb_to_hsv;
use seaice_imgproc::filter::{box_blur_f32, median_filter};
use seaice_imgproc::ops::{absdiff, min_max_normalize};
use seaice_imgproc::threshold::{otsu_binary, threshold, ThresholdType};
use serde::{Deserialize, Serialize};

/// Chroma hypotheses `(ρ = R/B, γ = G/B)` for the two blue-tinted classes
/// that make haze identifiable.
const HYPOTHESES: [(f32, f32); 2] = [(0.45, 0.70), (0.82, 0.92)];

/// Tuning parameters of the cloud/shadow filter.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Median pre-filter radius ("noise filtering" stage); 0 disables.
    pub denoise_radius: usize,
    /// Box radius used to smooth the haze and shadow-gain fields. Should
    /// be large enough to bridge chroma-degenerate (bright ice) patches
    /// but smaller than the cloud structures themselves.
    pub smooth_radius: usize,
    /// Maximum opacity a *thin* cloud can plausibly reach; hypothesis
    /// solutions above this are rejected as degenerate (white surface).
    pub haze_cap: f32,
    /// Green-channel consistency tolerance (8-bit levels) for accepting a
    /// per-pixel haze estimate.
    pub consistency_tol: f32,
    /// Saturation ceiling identifying thick-ice chroma in the shadow pass.
    pub shadow_sat_max: u8,
    /// V window (inclusive) in which shadowed thick ice is searched.
    pub shadow_v: (u8, u8),
    /// Reference V of healthy thick ice, used to derive the shadow gain.
    pub thick_target_v: f32,
    /// Minimum haze opacity that is actually corrected (hysteresis against
    /// amplifying estimation noise on clean scenes).
    pub min_haze: f32,
    /// Ablation switch: run the shadow-correction pass (step 5).
    pub shadow_pass: bool,
    /// Ablation switch: let confident pixels keep their own closed-form
    /// haze estimate instead of always taking the pooled field.
    pub confidence_blend: bool,
    /// Ablation switch: exclude shadow-plausible (near-achromatic mid-V)
    /// pixels from the haze evidence pool.
    pub shadow_exclusion: bool,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self {
            denoise_radius: 1,
            smooth_radius: 32,
            haze_cap: 0.62,
            consistency_tol: 6.0,
            shadow_sat_max: 14,
            shadow_v: (60, 204),
            thick_target_v: 230.0,
            min_haze: 0.04,
            shadow_pass: true,
            confidence_blend: true,
            shadow_exclusion: true,
        }
    }
}

impl FilterConfig {
    /// Scales the smoothing radius to the image size (`side / 8`), which
    /// keeps the field smoothing proportionate for tiles vs full scenes.
    pub fn for_tile(side: usize) -> Self {
        Self {
            smooth_radius: (side / 8).max(4),
            ..Self::default()
        }
    }
}

/// Filter results: the corrected image plus diagnostic fields and masks.
#[derive(Clone, Debug)]
pub struct FilterOutput {
    /// The cloud/shadow-corrected RGB image.
    pub filtered: Image<u8>,
    /// Binary (0/255) thin-cloud mask from Otsu thresholding of the
    /// normalized haze field.
    pub cloud_mask: Image<u8>,
    /// Binary (0/255) shadow mask (smoothed candidate coverage).
    pub shadow_mask: Image<u8>,
    /// Smoothed haze-opacity field in `[0, 1]`.
    pub haze: Image<f32>,
    /// Smoothed shadow gain field in `(0, 1]` (1 = unshadowed).
    pub shadow_gain: Image<f32>,
    /// Per-pixel absolute change `|filtered − original|` (max over
    /// channels), for inspection.
    pub residual: Image<u8>,
}

/// The thin-cloud and shadow filter.
#[derive(Clone, Debug, Default)]
pub struct CloudShadowFilter {
    config: FilterConfig,
}

impl CloudShadowFilter {
    /// Creates a filter with the given tuning.
    pub fn new(config: FilterConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// Runs the filter but keeps only the corrected image, donating the
    /// diagnostic buffers (masks and fields) to `scratch` so batch callers
    /// reuse them for the next tile instead of freeing and reallocating.
    pub fn apply_keep_filtered(
        &self,
        rgb: &Image<u8>,
        scratch: &mut seaice_imgproc::buffer::Scratch,
    ) -> Image<u8> {
        let out = self.apply(rgb);
        scratch.recycle_image(out.cloud_mask);
        scratch.recycle_image(out.shadow_mask);
        scratch.recycle_image(out.residual);
        scratch.recycle_image_f32(out.haze);
        scratch.recycle_image_f32(out.shadow_gain);
        out.filtered
    }

    /// Runs the filter on an RGB image.
    ///
    /// # Panics
    /// Panics if `rgb` is not 3-channel.
    pub fn apply(&self, rgb: &Image<u8>) -> FilterOutput {
        assert_eq!(rgb.channels(), 3, "filter expects an RGB image");
        let cfg = &self.config;
        let (w, h) = rgb.dimensions();

        // 1. Noise filtering.
        let denoised = median_filter(rgb, cfg.denoise_radius);

        // 2. Per-pixel haze estimation with chroma hypotheses.
        //
        // Shadowed thick ice is *pixelwise indistinguishable* from hazy
        // water (multiplicatively darkened white has the same RGB as
        // white-haze over dark water), so pixels that are plausibly
        // shadowed bright ice — near-achromatic at mid V — are excluded
        // from the haze evidence pool; the smooth haze field bridges over
        // them from unambiguous neighbours.
        let hsv_obs = rgb_to_hsv(&denoised);
        let mut a_weighted = Image::<f32>::new(w, h, 1);
        let mut weight = Image::<f32>::new(w, h, 1);
        a_weighted
            .as_mut_slice()
            .par_chunks_exact_mut(w.max(1))
            .zip(weight.as_mut_slice().par_chunks_exact_mut(w.max(1)))
            .enumerate()
            .for_each(|(y, (a_row, w_row))| {
                for x in 0..w {
                    let sv = hsv_obs.pixel(x, y);
                    if cfg.shadow_exclusion
                        && sv[1] <= cfg.shadow_sat_max
                        && (cfg.shadow_v.0..=cfg.shadow_v.1).contains(&sv[2])
                    {
                        continue; // plausibly shadowed bright ice
                    }
                    let px = denoised.pixel(x, y);
                    let (r, g, b) = (px[0] as f32, px[1] as f32, px[2] as f32);
                    let mut best: Option<(f32, f32)> = None; // (a, err)
                    for &(rho, gamma) in &HYPOTHESES {
                        // 8-bit rounding can push an exact zero-haze pixel
                        // slightly negative; clamp instead of rejecting so
                        // the correct hypothesis still competes.
                        let a = ((r - rho * b) / (255.0 * (1.0 - rho))).max(0.0);
                        if a > cfg.haze_cap {
                            continue;
                        }
                        let g_pred = gamma * (b - 255.0 * a) + 255.0 * a;
                        let err = (g_pred - g).abs();
                        if best.is_none_or(|(_, e)| err < e) {
                            best = Some((a, err));
                        }
                    }
                    if let Some((a, err)) = best {
                        if err <= cfg.consistency_tol {
                            let conf = 1.0 - err / cfg.consistency_tol;
                            a_row[x] = a * conf;
                            w_row[x] = conf;
                        }
                    }
                }
            });

        // 3. Smooth the field (haze varies slowly) via normalized
        //    convolution, so confident pixels fill in degenerate ones.
        let blur_a = box_blur_f32(&a_weighted, cfg.smooth_radius);
        let blur_w = box_blur_f32(&weight, cfg.smooth_radius);
        let mut haze = Image::<f32>::new(w, h, 1);
        for (i, hz) in haze.as_mut_slice().iter_mut().enumerate() {
            // Pooled estimate over the window (bridges degenerate pixels).
            let pooled = if blur_w.as_slice()[i] > 0.02 {
                (blur_a.as_slice()[i] / blur_w.as_slice()[i]).clamp(0.0, cfg.haze_cap)
            } else {
                0.0
            };
            // Confident pixels keep their own (closed-form, exact)
            // estimate; the pooled field only fills in the rest. Without
            // this, box smoothing dilutes cloud interiors with clear
            // surroundings and the haze is systematically under-corrected.
            let own_w = if cfg.confidence_blend {
                weight.as_slice()[i].clamp(0.0, 1.0)
            } else {
                0.0
            };
            let own = if own_w > 0.0 {
                a_weighted.as_slice()[i] / own_w
            } else {
                0.0
            };
            *hz = own_w * own + (1.0 - own_w) * pooled;
        }

        // 4. Invert the haze where it is significant.
        let mut dehazed = denoised.clone();
        dehazed
            .as_mut_slice()
            .par_chunks_exact_mut(w.max(1) * 3)
            .enumerate()
            .for_each(|(y, row)| {
                for x in 0..w {
                    let a = haze.get(x, y);
                    if a < cfg.min_haze {
                        continue;
                    }
                    let inv = 1.0 / (1.0 - a);
                    for c in row[x * 3..x * 3 + 3].iter_mut() {
                        *c = ((*c as f32 - 255.0 * a) * inv).round().clamp(0.0, 255.0) as u8;
                    }
                }
            });

        // 5. Shadow pass on the dehazed image: thick-ice chroma at
        //    mid-range V implies multiplicative darkening.
        let hsv = rgb_to_hsv(&dehazed);
        let mut gain_weighted = Image::<f32>::new(w, h, 1);
        let mut gain_weight = Image::<f32>::new(w, h, 1);
        let shadow_rows = if cfg.shadow_pass { h } else { 0 };
        for y in 0..shadow_rows {
            for x in 0..w {
                let p = hsv.pixel(x, y);
                let (s, v) = (p[1], p[2]);
                if s <= cfg.shadow_sat_max && (cfg.shadow_v.0..=cfg.shadow_v.1).contains(&v) {
                    // Truncated threshold on the implied gain: never above 1.
                    let m = (v as f32 / cfg.thick_target_v).min(1.0);
                    gain_weighted.set(x, y, m);
                    gain_weight.set(x, y, 1.0);
                }
            }
        }
        let blur_g = box_blur_f32(&gain_weighted, cfg.smooth_radius);
        let blur_gw = box_blur_f32(&gain_weight, cfg.smooth_radius);
        let mut shadow_gain = Image::<f32>::new(w, h, 1);
        for (i, sg) in shadow_gain.as_mut_slice().iter_mut().enumerate() {
            let bw = blur_gw.as_slice()[i];
            let pooled = if bw > 0.05 {
                let m = (blur_g.as_slice()[i] / bw).clamp(0.25, 1.0);
                // Fade the pooled correction with mask density so borders
                // stay smooth: m_eff = 1 + (m - 1) * density.
                let density = (bw * 2.0).min(1.0);
                1.0 + (m - 1.0) * density
            } else {
                1.0
            };
            // Flagged pixels use their own implied gain (maps their V to
            // the thick-ice reference exactly); others take the pooled,
            // density-faded field.
            *sg = if gain_weight.as_slice()[i] > 0.0 {
                gain_weighted.as_slice()[i].clamp(0.25, 1.0)
            } else {
                pooled
            };
        }

        let mut filtered = dehazed;
        filtered
            .as_mut_slice()
            .par_chunks_exact_mut(w.max(1) * 3)
            .enumerate()
            .for_each(|(y, row)| {
                for x in 0..w {
                    let m = shadow_gain.get(x, y);
                    if m >= 0.999 {
                        continue;
                    }
                    let inv = 1.0 / m;
                    for c in row[x * 3..x * 3 + 3].iter_mut() {
                        *c = (*c as f32 * inv).round().clamp(0.0, 255.0) as u8;
                    }
                }
            });

        // 6. Diagnostic masks. The haze field is normalized to 8 bits and
        //    Otsu-thresholded (adaptive split) when contamination exists.
        let haze_u8 = haze.map(|a| (a * 255.0).round().clamp(0.0, 255.0) as u8);
        let mean_haze = haze.mean();
        let cloud_mask = if mean_haze > cfg.min_haze {
            let normalized = min_max_normalize(&haze_u8, 0, 255);
            let (_, mask) = otsu_binary(&normalized, 255);
            mask
        } else {
            Image::<u8>::new(w, h, 1)
        };
        let shadow_u8 = shadow_gain.map(|m| ((1.0 - m) * 255.0).round().clamp(0.0, 255.0) as u8);
        let shadow_mask = threshold(&shadow_u8, 12, 255, ThresholdType::Binary);

        // 7. Change map (per-channel absolute difference, max-reduced).
        let diff = absdiff(&filtered, rgb);
        let mut residual = Image::<u8>::new(w, h, 1);
        for (d, px) in residual
            .as_mut_slice()
            .iter_mut()
            .zip(diff.as_slice().chunks_exact(3))
        {
            *d = px.iter().copied().max().unwrap_or(0);
        }

        FilterOutput {
            filtered,
            cloud_mask,
            shadow_mask,
            haze,
            shadow_gain,
            residual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::{ClassRanges, IceClass};
    use crate::segment::segment_classes;
    use seaice_s2::clouds::{self, CloudConfig};
    use seaice_s2::synth::{generate, SceneConfig};

    fn scene_and_layer(side: usize, coverage: f64, seed: u64) -> (Image<u8>, Image<u8>, Image<u8>) {
        let scene = generate(&SceneConfig::tiny(side), seed);
        let layer = clouds::generate(
            &CloudConfig {
                coverage,
                ..CloudConfig::tiny(side)
            },
            seed,
            side,
            side,
        );
        let cloudy = layer.apply(&scene.rgb);
        (scene.rgb, cloudy, scene.truth)
    }

    fn label_accuracy(mask: &Image<u8>, truth: &Image<u8>) -> f64 {
        let correct = mask
            .as_slice()
            .iter()
            .zip(truth.as_slice())
            .filter(|(a, b)| a == b)
            .count();
        correct as f64 / truth.as_slice().len() as f64
    }

    #[test]
    fn clean_image_passes_through_nearly_unchanged() {
        let (clean, _, _) = scene_and_layer(96, 0.0, 3);
        let out = CloudShadowFilter::new(FilterConfig::for_tile(96)).apply(&clean);
        // Allow the median pre-filter to touch isolated pixels; the mean
        // residual must stay tiny.
        let mean_residual: f64 = out
            .residual
            .as_slice()
            .iter()
            .map(|&v| v as f64)
            .sum::<f64>()
            / out.residual.as_slice().len() as f64;
        assert!(mean_residual < 4.0, "mean residual {mean_residual}");
        assert_eq!(out.cloud_mask.nonzero_fraction(), 0.0);
    }

    #[test]
    fn filter_recovers_autolabel_accuracy_on_contaminated_scene() {
        let (_, cloudy, truth) = scene_and_layer(128, 0.35, 7);
        let ranges = ClassRanges::paper();
        let acc_before = label_accuracy(&segment_classes(&cloudy, &ranges), &truth);
        let out = CloudShadowFilter::new(FilterConfig::for_tile(128)).apply(&cloudy);
        let acc_after = label_accuracy(&segment_classes(&out.filtered, &ranges), &truth);
        assert!(
            acc_after > acc_before + 0.05,
            "filter must improve labels: before {acc_before:.3}, after {acc_after:.3}"
        );
        assert!(acc_after > 0.9, "filtered accuracy too low: {acc_after:.3}");
    }

    #[test]
    fn haze_field_matches_contamination_location() {
        let (_, cloudy, _) = scene_and_layer(128, 0.3, 11);
        let out = CloudShadowFilter::new(FilterConfig::for_tile(128)).apply(&cloudy);
        assert!(out.haze.mean() > 0.01, "haze must be detected");
        assert!(out.cloud_mask.nonzero_fraction() > 0.02);
    }

    #[test]
    fn dehazing_restores_water_values() {
        // Uniform water tile with strong synthetic haze applied manually.
        let mut water = Image::<u8>::new(64, 64, 3);
        for (_, _, _px) in water.pixels() {}
        for y in 0..64 {
            for x in 0..64 {
                // water rendering: v = 16, r = 0.45 v, g = 0.7 v
                water.put_pixel(x, y, &[7, 11, 16]);
            }
        }
        let a = 0.35f32;
        let hazy = water.map(|c| (c as f32 * (1.0 - a) + 255.0 * a).round() as u8);
        let out = CloudShadowFilter::new(FilterConfig::for_tile(64)).apply(&hazy);
        let ranges = ClassRanges::paper();
        let mask = segment_classes(&out.filtered, &ranges);
        let water_frac = mask
            .as_slice()
            .iter()
            .filter(|&&c| c == IceClass::Water as u8)
            .count() as f64
            / mask.as_slice().len() as f64;
        assert!(water_frac > 0.95, "water recovered fraction {water_frac}");
    }

    #[test]
    fn shadow_pass_restores_thick_ice() {
        // Uniform thick-ice tile, uniformly shadowed to V ≈ 120.
        let mut thick = Image::<u8>::new(64, 64, 3);
        thick.fill(&[224, 227, 230]);
        let m = 0.52f32;
        let shadowed = thick.map(|c| (c as f32 * m).round() as u8);
        let out = CloudShadowFilter::new(FilterConfig::for_tile(64)).apply(&shadowed);
        let ranges = ClassRanges::paper();
        let mask = segment_classes(&out.filtered, &ranges);
        let thick_frac = mask
            .as_slice()
            .iter()
            .filter(|&&c| c == IceClass::Thick as u8)
            .count() as f64
            / mask.as_slice().len() as f64;
        assert!(thick_frac > 0.95, "thick recovered fraction {thick_frac}");
        assert!(out.shadow_mask.nonzero_fraction() > 0.5);
    }

    #[test]
    fn thin_ice_is_not_mistaken_for_shadow() {
        // Clean thin ice has the same V range a shadow produces but keeps
        // its blue chroma; the filter must leave it alone.
        let mut thin = Image::<u8>::new(64, 64, 3);
        thin.fill(&[102, 115, 125]); // thin-ice rendering at v = 125
        let out = CloudShadowFilter::new(FilterConfig::for_tile(64)).apply(&thin);
        let ranges = ClassRanges::paper();
        let mask = segment_classes(&out.filtered, &ranges);
        assert!(mask.as_slice().iter().all(|&c| c == IceClass::Thin as u8));
    }

    #[test]
    fn output_shapes_match_input() {
        let (_, cloudy, _) = scene_and_layer(48, 0.2, 5);
        let out = CloudShadowFilter::default().apply(&cloudy);
        assert_eq!(out.filtered.dimensions(), (48, 48));
        assert_eq!(out.cloud_mask.dimensions(), (48, 48));
        assert_eq!(out.shadow_mask.dimensions(), (48, 48));
        assert_eq!(out.haze.dimensions(), (48, 48));
        assert_eq!(out.residual.dimensions(), (48, 48));
    }
}
