//! A fixed worker pool — the Rust analog of the Python `multiprocessing`
//! pool the paper uses for its single-machine scaling experiment
//! (Table I / Fig. 10).
//!
//! The pool spawns `n` OS threads fed by a crossbeam MPMC channel; each
//! submitted job is an independent closure (the auto-label task for one
//! image). Results carry their submission index so `map` preserves input
//! order, like `Pool.map`.

use crossbeam::channel::{self, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool with FIFO job dispatch.
pub struct WorkerPool {
    workers: Vec<JoinHandle<()>>,
    sender: Option<Sender<Job>>,
}

impl WorkerPool {
    /// Spawns `n` workers.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "worker pool needs at least one worker");
        let (sender, receiver) = channel::unbounded::<Job>();
        let workers = (0..n)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("seaice-worker-{i}"))
                    .spawn(move || {
                        // Workers exit when the channel is closed and
                        // drained. A panicking job must not kill the
                        // worker — remaining queued jobs would never run
                        // and `map` callers would hang; the panic is
                        // surfaced to the caller through the missing
                        // result instead.
                        while let Ok(job) = rx.recv() {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                    })
                    // seaice-lint: allow(panic-in-library) reason="spawn fails only on OS thread exhaustion at pool construction; there is no pool to degrade to and crashing early is correct"
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            workers,
            sender: Some(sender),
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submits one fire-and-forget job.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            // seaice-lint: allow(panic-in-library) reason="the sender is only taken in Drop, so it is Some for every live pool; a None means use-after-drop, a bug worth crashing on"
            .expect("pool is shutting down")
            .send(Box::new(job))
            // seaice-lint: allow(panic-in-library) reason="workers hold their receiver for the pool's lifetime and catch job panics; a closed channel means every worker died, i.e. supervision itself broke"
            .expect("worker channel closed");
    }

    /// Applies `f` to every item on the pool and returns results in input
    /// order (the `Pool.map` equivalent). Blocks until all results arrive.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let f = std::sync::Arc::new(f);
        let (tx, rx) = channel::unbounded::<(usize, U)>();
        for (i, item) in items.into_iter().enumerate() {
            let f = f.clone();
            let tx = tx.clone();
            self.submit(move || {
                let out = f(item);
                // The receiver lives until all results arrive; a send can
                // only fail if the caller panicked, in which case the
                // worker result is moot.
                let _ = tx.send((i, out));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            // A closed channel before all n results means some job
            // panicked (its sender was dropped during unwinding); fail
            // loudly rather than returning partial results.
            let (i, out) = rx
                .recv()
                // seaice-lint: allow(panic-in-library) reason="the comment above documents the fail-loudly contract: a closed channel means a job panicked and partial results must not be returned"
                .expect("a worker job panicked; result set is incomplete");
            slots[i] = Some(out);
        }
        slots
            .into_iter()
            // seaice-lint: allow(panic-in-library) reason="the loop above received exactly one result per index, so every slot is Some; a None is a pool bug, not a runtime condition"
            .map(|s| s.expect("missing result slot"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit, then join them.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map((0..100).collect(), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn map_empty_input() {
        let pool = WorkerPool::new(2);
        let out: Vec<i32> = pool.map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn all_workers_participate() {
        // With enough slow jobs, more than one worker thread must run them.
        let pool = WorkerPool::new(4);
        let names = Arc::new(parking_lot_free_set());
        let names2 = names.clone();
        let _ = pool.map((0..64).collect::<Vec<i32>>(), move |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            names2
                .lock()
                .unwrap()
                .insert(std::thread::current().name().unwrap_or("?").to_string());
        });
        assert!(names.lock().unwrap().len() > 1, "work never spread");
    }

    fn parking_lot_free_set() -> std::sync::Mutex<std::collections::HashSet<String>> {
        std::sync::Mutex::new(std::collections::HashSet::new())
    }

    #[test]
    fn submit_runs_jobs() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = counter.clone();
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // join workers
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn pool_survives_panicking_jobs() {
        // A job that panics must not take the worker down: later jobs
        // still execute on the same pool.
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..6 {
            let done = done.clone();
            pool.submit(move || {
                if i == 2 {
                    panic!("injected failure");
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Healthy jobs all run despite the poisoned one.
        let healthy = pool.map((0..8).collect::<Vec<i32>>(), |x| x + 1);
        assert_eq!(healthy.len(), 8);
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn map_fails_loudly_when_a_job_panics() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map((0..4).collect::<Vec<i32>>(), |x| {
                if x == 1 {
                    panic!("injected");
                }
                x
            })
        }));
        assert!(result.is_err(), "map must not return partial results");
        // The pool itself remains usable afterwards.
        let ok = pool.map(vec![10, 20], |x| x * 2);
        assert_eq!(ok, vec![20, 40]);
    }

    #[test]
    fn pool_size_reported() {
        assert_eq!(WorkerPool::new(3).size(), 3);
    }
}
