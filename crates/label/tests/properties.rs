//! Property-based tests for segmentation and filtering invariants.

use proptest::prelude::*;
use seaice_imgproc::buffer::Image;
use seaice_label::cloudshadow::{CloudShadowFilter, FilterConfig};
use seaice_label::fused::ClassLut;
use seaice_label::ranges::{ClassRanges, HsvRange, IceClass};
use seaice_label::segment::{class_masks, color_to_classes, segment_classes, segment_to_color};

fn arb_rgb(max_side: usize) -> impl Strategy<Value = Image<u8>> {
    (2..=max_side, 2..=max_side).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h * 3)
            .prop_map(move |data| Image::from_vec(w, h, 3, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_pixel_gets_exactly_one_class(img in arb_rgb(12)) {
        let ranges = ClassRanges::paper();
        let mask = segment_classes(&img, &ranges);
        prop_assert!(mask.as_slice().iter().all(|&c| c < 3));
        // The per-class binary masks partition the image.
        let [thick, thin, water] = class_masks(&img, &ranges);
        for i in 0..mask.as_slice().len() {
            let hits = [&thick, &thin, &water]
                .iter()
                .filter(|m| m.as_slice()[i] == 255)
                .count();
            prop_assert_eq!(hits, 1, "pixel {} in {} masks", i, hits);
        }
    }

    #[test]
    fn segmentation_depends_only_on_value_for_paper_ranges(
        v: u8, h1 in 0u8..180, s1: u8, h2 in 0u8..180, s2: u8,
    ) {
        // The paper's ranges span all hue/saturation, so two HSV pixels
        // with equal V always classify identically.
        let ranges = ClassRanges::paper();
        let a = ranges.classify(&[h1, s1, v]);
        let b = ranges.classify(&[h2, s2, v]);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn color_roundtrip_preserves_classes(img in arb_rgb(10)) {
        let mask = segment_classes(&img, &ClassRanges::paper());
        let color = segment_to_color(&mask);
        prop_assert_eq!(color_to_classes(&color), mask);
    }

    #[test]
    fn filter_output_is_well_formed(img in arb_rgb(10)) {
        // Arbitrary (even nonsensical) images must not break the filter:
        // output shapes match, fields are bounded, masks are binary.
        let out = CloudShadowFilter::new(FilterConfig {
            smooth_radius: 2,
            ..FilterConfig::default()
        })
        .apply(&img);
        prop_assert_eq!(out.filtered.dimensions(), img.dimensions());
        prop_assert!(out.haze.as_slice().iter().all(|&a| (0.0..=0.63).contains(&a)));
        prop_assert!(out
            .shadow_gain
            .as_slice()
            .iter()
            .all(|&m| (0.25..=1.0 + 1e-6).contains(&m)));
        prop_assert!(out.cloud_mask.as_slice().iter().all(|&v| v == 0 || v == 255));
        prop_assert!(out.shadow_mask.as_slice().iter().all(|&v| v == 0 || v == 255));
    }

    #[test]
    fn filter_is_deterministic(img in arb_rgb(8)) {
        let f = CloudShadowFilter::new(FilterConfig {
            smooth_radius: 2,
            ..FilterConfig::default()
        });
        prop_assert_eq!(f.apply(&img).filtered, f.apply(&img).filtered);
    }

    #[test]
    fn lut_classification_matches_reference_for_arbitrary_ranges(
        bounds in proptest::collection::vec(any::<u8>(), 18),
        probes in proptest::collection::vec(any::<u8>(), 48),
    ) {
        // Fully arbitrary per-class boxes — including inverted (lo > hi,
        // i.e. empty) bounds on any channel — must classify identically
        // through the LUT and the reference range scan, fallback included.
        let range = |i: usize| HsvRange {
            lo: [bounds[i], bounds[i + 1], bounds[i + 2]],
            hi: [bounds[i + 3], bounds[i + 4], bounds[i + 5]],
        };
        let ranges = ClassRanges {
            thick: range(0),
            thin: range(6),
            water: range(12),
        };
        let lut = ClassLut::new(&ranges);
        for hsv in probes.chunks_exact(3) {
            prop_assert_eq!(
                lut.classify(hsv[0], hsv[1], hsv[2]),
                ranges.classify(hsv) as u8,
                "hsv {:?} under ranges {:?}", hsv, ranges
            );
        }
        // Membership per class: a probe classifies to class k through the
        // first-match scan iff no earlier class contains it and k does.
        for hsv in probes.chunks_exact(3) {
            let first = IceClass::ALL
                .into_iter()
                .find(|c| ranges.range(*c).contains(hsv));
            if let Some(c) = first {
                prop_assert_eq!(lut.classify(hsv[0], hsv[1], hsv[2]), c as u8);
            }
        }
    }

    #[test]
    fn wrapped_hue_bounds_are_empty_in_both_paths(
        hue_lo in 100u8..=255, hue_span in 1u8..=99, h: u8, s: u8, v: u8,
    ) {
        // OpenCV-style inclusive boxes don't wrap the hue circle: lo > hi
        // means the box is empty. The LUT must agree — every pixel then
        // lands in the nearest-V fallback, same as the reference.
        let hue_hi = hue_lo - hue_span;
        let empty_hue = |vals: [u8; 2]| HsvRange {
            lo: [hue_lo, 0, vals[0]],
            hi: [hue_hi, 255, vals[1]],
        };
        let ranges = ClassRanges {
            thick: empty_hue([205, 255]),
            thin: empty_hue([31, 204]),
            water: empty_hue([0, 30]),
        };
        prop_assert!(!ranges.thick.contains(&[h, s, v]));
        let lut = ClassLut::new(&ranges);
        prop_assert_eq!(lut.classify(h, s, v), ranges.classify(&[h, s, v]) as u8);
    }

    #[test]
    fn calibration_cuts_are_ordered(cut_a in 0u8..=200, gap in 2u8..=50) {
        let water_hi = cut_a;
        let thick_lo = cut_a.saturating_add(gap).max(cut_a + 2);
        let r = ClassRanges::from_value_cuts(water_hi, thick_lo);
        let (w, t) = r.value_cuts();
        prop_assert_eq!(w, water_hi);
        prop_assert_eq!(t, thick_lo);
        // Partition property for arbitrary cuts.
        for v in 0..=255u8 {
            let hits = IceClass::ALL
                .into_iter()
                .filter(|c| r.range(*c).contains(&[0, 0, v]))
                .count();
            prop_assert_eq!(hits, 1);
        }
    }
}
