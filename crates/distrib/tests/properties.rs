//! Property-based tests for the collectives: the ring all-reduce must
//! equal the sequential reduction for any group size and buffer length.

use proptest::prelude::*;
use seaice_distrib::ProcessGroup;

fn run_group<T: Send + 'static>(
    n: usize,
    f: impl Fn(seaice_distrib::Rank) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let ranks = ProcessGroup::new(n);
    let handles: Vec<_> = ranks
        .into_iter()
        .map(|r| {
            let f = f.clone();
            std::thread::spawn(move || f(r))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_equals_sequential_sum(
        ranks in 1usize..6,
        len in 0usize..40,
        seed in 0u64..1000,
    ) {
        // Rank r's buffer element i is a deterministic function of (r, i).
        let out = run_group(ranks, move |rank| {
            let r = rank.rank();
            let mut buf: Vec<f32> = (0..len)
                .map(|i| ((r * 31 + i * 7 + seed as usize) % 97) as f32 / 9.0)
                .collect();
            rank.all_reduce_sum(&mut buf);
            buf
        });
        // Sequential reference.
        let expected: Vec<f32> = (0..len)
            .map(|i| {
                (0..ranks)
                    .map(|r| ((r * 31 + i * 7 + seed as usize) % 97) as f32 / 9.0)
                    .sum()
            })
            .collect();
        for buf in out {
            for (a, e) in buf.iter().zip(&expected) {
                prop_assert!((a - e).abs() < 1e-3, "{a} vs {e}");
            }
        }
    }

    #[test]
    fn allreduce_mean_is_permutation_invariant(
        ranks in 2usize..5,
        len in 1usize..16,
    ) {
        // Every rank ends with the same buffer.
        let out = run_group(ranks, move |rank| {
            let mut buf: Vec<f32> = (0..len)
                .map(|i| (rank.rank() as f32 + 1.0) * (i as f32 + 0.5))
                .collect();
            rank.all_reduce_mean(&mut buf);
            buf
        });
        for buf in &out[1..] {
            prop_assert_eq!(buf, &out[0]);
        }
    }

    #[test]
    fn broadcast_from_any_root(ranks in 1usize..5, root_pick in 0usize..5) {
        let root = root_pick % ranks;
        let out = run_group(ranks, move |rank| {
            let mut buf = vec![rank.rank() as f32; 6];
            rank.broadcast(&mut buf, root);
            buf
        });
        for buf in out {
            prop_assert!(buf.iter().all(|&v| v == root as f32));
        }
    }
}
