//! `DistributedOptimizer` — the `opt = hvd.DistributedOptimizer(opt)`
//! analog: averages gradients across ranks with ring all-reduce before
//! delegating to the wrapped optimizer.

use crate::group::{CollectiveError, Rank};
use seaice_nn::layers::Param;
use seaice_nn::optim::Optimizer;

/// Wraps an optimizer with gradient synchronization. Every rank must call
/// `step` at the same time with identically shaped parameter lists; after
/// the call all replicas applied the same averaged gradients.
pub struct DistributedOptimizer<'g, O> {
    inner: O,
    rank: &'g Rank,
}

impl<'g, O: Optimizer> DistributedOptimizer<'g, O> {
    /// Wraps `inner` for the given rank endpoint.
    pub fn new(inner: O, rank: &'g Rank) -> Self {
        Self { inner, rank }
    }

    /// The wrapped optimizer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Fallible [`step`](Optimizer::step): synchronizes gradients with
    /// the fallible all-reduce and reports a lost peer instead of
    /// panicking. On error no parameter is updated — the replica's
    /// weights still equal the last completed step, so the surviving rank
    /// can unwind and resume from a checkpoint.
    ///
    /// # Errors
    /// [`CollectiveError`] when a peer rank disappeared mid-sync.
    pub fn try_step(&mut self, params: &mut [&mut Param]) -> Result<(), CollectiveError> {
        // Fuse all gradients into one buffer so the ring runs once per
        // step (Horovod batches tensors the same way for bandwidth).
        let total: usize = params.iter().map(|p| p.grad.len()).sum();
        let mut fused = Vec::with_capacity(total);
        for p in params.iter() {
            fused.extend_from_slice(p.grad.as_slice());
        }
        self.rank.try_all_reduce_mean(&mut fused)?;
        let mut offset = 0;
        for p in params.iter_mut() {
            let len = p.grad.len();
            p.grad
                .as_mut_slice()
                .copy_from_slice(&fused[offset..offset + len]);
            offset += len;
        }
        self.inner.step(params);
        Ok(())
    }
}

impl<O: Optimizer> Optimizer for DistributedOptimizer<'_, O> {
    fn step(&mut self, params: &mut [&mut Param]) {
        if let Err(e) = self.try_step(params) {
            // seaice-lint: allow(panic-in-library) reason="the Optimizer trait's step is infallible by signature; try_step is the fallible path, and a collective failure here means a peer already panicked"
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::ProcessGroup;
    use seaice_nn::optim::Sgd;
    use seaice_nn::Tensor;

    fn param(vals: &[f32]) -> Param {
        Param {
            value: Tensor::from_vec(&[vals.len()], vals.to_vec()),
            grad: Tensor::zeros(&[vals.len()]),
        }
    }

    #[test]
    fn step_applies_rank_averaged_gradients() {
        let ranks = ProcessGroup::new(4);
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|rank| {
                std::thread::spawn(move || {
                    let mut p = param(&[1.0, 1.0]);
                    // Rank r's local gradient is r+1; the average is 2.5.
                    p.grad.as_mut_slice().fill(rank.rank() as f32 + 1.0);
                    let mut opt = DistributedOptimizer::new(Sgd::new(1.0, 0.0), &rank);
                    opt.step(&mut [&mut p]);
                    p.value.as_slice().to_vec()
                })
            })
            .collect();
        for h in handles {
            let v = h.join().unwrap();
            // w = 1 − lr · mean(grad) = 1 − 2.5.
            assert!(v.iter().all(|&x| (x - (1.0 - 2.5)).abs() < 1e-6));
        }
    }

    #[test]
    fn replicas_stay_in_lockstep_over_steps() {
        let ranks = ProcessGroup::new(3);
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|rank| {
                std::thread::spawn(move || {
                    let mut a = param(&[0.0]);
                    let mut b = param(&[10.0]);
                    let mut opt = DistributedOptimizer::new(Sgd::new(0.1, 0.0), &rank);
                    for step in 0..5 {
                        a.grad.as_mut_slice()[0] = (rank.rank() + step) as f32;
                        b.grad.as_mut_slice()[0] = -((rank.rank() * step) as f32);
                        opt.step(&mut [&mut a, &mut b]);
                    }
                    (a.value.as_slice()[0], b.value.as_slice()[0])
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in &results[1..] {
            assert_eq!(*w, results[0], "replicas diverged");
        }
    }

    #[test]
    fn multi_param_fusion_preserves_boundaries() {
        let ranks = ProcessGroup::new(2);
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|rank| {
                std::thread::spawn(move || {
                    let mut a = param(&[0.0; 3]);
                    let mut b = param(&[0.0; 5]);
                    let ra = rank.rank() as f32;
                    a.grad.as_mut_slice().fill(ra);
                    b.grad.as_mut_slice().fill(10.0 + ra);
                    let mut opt = DistributedOptimizer::new(Sgd::new(1.0, 0.0), &rank);
                    opt.step(&mut [&mut a, &mut b]);
                    (a.value.as_slice().to_vec(), b.value.as_slice().to_vec())
                })
            })
            .collect();
        for h in handles {
            let (a, b) = h.join().unwrap();
            assert!(a.iter().all(|&v| (v + 0.5).abs() < 1e-6), "a got {a:?}");
            assert!(b.iter().all(|&v| (v + 10.5).abs() < 1e-6), "b got {b:?}");
        }
    }
}
