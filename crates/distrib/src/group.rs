//! Process group and collectives: ring all-reduce, broadcast, barrier.
//!
//! Ranks are threads; each holds a channel to its ring successor. The
//! all-reduce is the bandwidth-optimal ring algorithm the paper cites
//! (Patarasuk & Yuan 2009): the buffer is split into `N` chunks,
//! `N − 1` reduce-scatter steps leave each rank with one fully reduced
//! chunk, and `N − 1` all-gather steps circulate the reduced chunks —
//! every rank sends `2 (N−1)/N · B` bytes total regardless of `N`.

use crossbeam::channel::{self, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// A collective failed because a peer rank disappeared (its endpoints
/// were dropped — typically the rank thread panicked or was killed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveError {
    /// This rank's ring successor hung up mid-collective.
    SuccessorLost,
    /// This rank's ring predecessor hung up mid-collective.
    PredecessorLost,
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::SuccessorLost => f.write_str("ring successor disconnected"),
            CollectiveError::PredecessorLost => f.write_str("ring predecessor disconnected"),
        }
    }
}

impl std::error::Error for CollectiveError {}

/// One rank's endpoint in the group.
pub struct Rank {
    rank: usize,
    size: usize,
    to_next: Sender<Vec<f32>>,
    from_prev: Receiver<Vec<f32>>,
    barrier: Arc<Barrier>,
}

/// A communicator over `n` ranks. Hand each [`Rank`] to its own thread.
pub struct ProcessGroup;

impl ProcessGroup {
    /// Builds the ring endpoints for `n` ranks.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[allow(clippy::new_ret_no_self)] // `ProcessGroup` is a namespace; ranks are the product
    pub fn new(n: usize) -> Vec<Rank> {
        // seaice-lint: allow(panic-in-library) reason="documented panicking constructor (# Panics above); try_new is the fallible path for callers with dynamic group sizes"
        Self::try_new(n).expect("process group needs at least one rank")
    }

    /// Fallible [`new`](ProcessGroup::new): rejects an empty group with a
    /// descriptive error instead of panicking.
    ///
    /// # Errors
    /// When `n == 0`.
    pub fn try_new(n: usize) -> Result<Vec<Rank>, String> {
        if n == 0 {
            return Err("process group needs at least one rank (got 0)".to_string());
        }
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            // rank r sends into channel r, rank (r+1) % n receives from it.
            let (tx, rx) = channel::bounded::<Vec<f32>>(2);
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(Barrier::new(n));
        let mut ranks: Vec<Rank> = Vec::with_capacity(n);
        // Receiver for rank r is channel (r - 1 + n) % n.
        let mut receivers: Vec<Option<Receiver<Vec<f32>>>> =
            receivers.into_iter().map(Some).collect();
        for (r, to_next) in senders.into_iter().enumerate() {
            let prev = (r + n - 1) % n;
            // seaice-lint: allow(panic-in-library) reason="each ring index is visited exactly once by this loop, so the Option is always Some; a None would be a construction bug worth crashing on"
            let from_prev = receivers[prev].take().expect("receiver used twice");
            ranks.push(Rank {
                rank: r,
                size: n,
                to_next,
                from_prev,
                barrier: barrier.clone(),
            });
        }
        Ok(ranks)
    }
}

/// Chunk boundaries: `n` near-equal contiguous ranges covering `len`.
fn chunk_bounds(len: usize, n: usize, i: usize) -> (usize, usize) {
    let base = len / n;
    let rem = len % n;
    let start = i * base + i.min(rem);
    let extra = usize::from(i < rem);
    (start, start + base + extra)
}

impl Rank {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Blocks until every rank reaches the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// In-place ring all-reduce (sum). All ranks must call concurrently
    /// with equal-length buffers.
    ///
    /// # Panics
    /// Panics if a neighbour disconnects mid-collective (a peer rank
    /// panicked). Use [`try_all_reduce_sum`](Rank::try_all_reduce_sum)
    /// when peers are allowed to fail.
    pub fn all_reduce_sum(&self, buf: &mut [f32]) {
        if let Err(e) = self.try_all_reduce_sum(buf) {
            // seaice-lint: allow(panic-in-library) reason="documented panicking collective (# Panics above); try_all_reduce_sum is the fallible path used by the elastic trainer"
            panic!("{e}");
        }
    }

    /// Fallible [`all_reduce_sum`](Rank::all_reduce_sum): reports a lost
    /// peer instead of panicking, so a surviving rank can unwind cleanly
    /// and rejoin a rebuilt, smaller group (elastic recovery). On error
    /// the buffer contents are unspecified — discard them and resume from
    /// a checkpoint.
    ///
    /// # Errors
    /// [`CollectiveError`] naming the lost neighbour.
    pub fn try_all_reduce_sum(&self, buf: &mut [f32]) -> Result<(), CollectiveError> {
        let n = self.size;
        if n == 1 {
            return Ok(());
        }
        let len = buf.len();

        // Phase 1: reduce-scatter. At step s, send chunk (r − s) and
        // accumulate incoming chunk (r − s − 1).
        for s in 0..n - 1 {
            let send_idx = (self.rank + n - s) % n;
            let recv_idx = (self.rank + n - s - 1) % n;
            let (ss, se) = chunk_bounds(len, n, send_idx);
            self.to_next
                .send(buf[ss..se].to_vec())
                .map_err(|_| CollectiveError::SuccessorLost)?;
            let incoming = self
                .from_prev
                .recv()
                .map_err(|_| CollectiveError::PredecessorLost)?;
            let (rs, re) = chunk_bounds(len, n, recv_idx);
            debug_assert_eq!(incoming.len(), re - rs);
            for (dst, src) in buf[rs..re].iter_mut().zip(&incoming) {
                *dst += src;
            }
        }

        // Phase 2: all-gather. Rank r now owns the reduced chunk (r + 1).
        for s in 0..n - 1 {
            let send_idx = (self.rank + 1 + n - s) % n;
            let recv_idx = (self.rank + n - s) % n;
            let (ss, se) = chunk_bounds(len, n, send_idx);
            self.to_next
                .send(buf[ss..se].to_vec())
                .map_err(|_| CollectiveError::SuccessorLost)?;
            let incoming = self
                .from_prev
                .recv()
                .map_err(|_| CollectiveError::PredecessorLost)?;
            let (rs, re) = chunk_bounds(len, n, recv_idx);
            debug_assert_eq!(incoming.len(), re - rs);
            buf[rs..re].copy_from_slice(&incoming);
        }
        Ok(())
    }

    /// In-place average all-reduce (`sum / size`) — what gradient
    /// synchronization uses.
    pub fn all_reduce_mean(&self, buf: &mut [f32]) {
        self.all_reduce_sum(buf);
        let inv = 1.0 / self.size as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
    }

    /// Fallible [`all_reduce_mean`](Rank::all_reduce_mean); see
    /// [`try_all_reduce_sum`](Rank::try_all_reduce_sum).
    ///
    /// # Errors
    /// [`CollectiveError`] naming the lost neighbour.
    pub fn try_all_reduce_mean(&self, buf: &mut [f32]) -> Result<(), CollectiveError> {
        self.try_all_reduce_sum(buf)?;
        let inv = 1.0 / self.size as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
        Ok(())
    }

    /// Broadcast from `root`: after the call every rank's buffer equals
    /// the root's (ring pipeline; `hvd.BroadcastGlobalVariables` analog).
    ///
    /// # Panics
    /// Panics if a ring neighbour disconnects mid-broadcast (a peer rank
    /// panicked). Broadcast happens at generation start, before any rank
    /// can fail under the elastic trainer's fault model, so there is no
    /// fallible variant.
    pub fn broadcast(&self, buf: &mut [f32], root: usize) {
        let n = self.size;
        if n == 1 {
            return;
        }
        // Pass the buffer around the ring starting at root; every rank
        // except the root overwrites, and the rank before the root stops
        // the circulation.
        let is_last = (self.rank + 1) % n == root;
        if self.rank == root {
            self.to_next
                .send(buf.to_vec())
                // seaice-lint: allow(panic-in-library) reason="documented panicking collective (# Panics above); neighbours cannot fail before the first broadcast under the elastic fault model"
                .expect("ring successor disconnected");
        } else {
            let incoming = self
                .from_prev
                .recv()
                // seaice-lint: allow(panic-in-library) reason="documented panicking collective (# Panics above); neighbours cannot fail before the first broadcast under the elastic fault model"
                .expect("ring predecessor disconnected");
            buf.copy_from_slice(&incoming);
            if !is_last {
                self.to_next
                    .send(incoming)
                    // seaice-lint: allow(panic-in-library) reason="documented panicking collective (# Panics above); neighbours cannot fail before the first broadcast under the elastic fault model"
                    .expect("ring successor disconnected");
            }
        }
        self.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` on every rank of an `n`-group, returning per-rank results.
    fn run_group<T: Send + 'static>(
        n: usize,
        f: impl Fn(Rank) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let ranks = ProcessGroup::new(n);
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|r| {
                let f = f.clone();
                std::thread::spawn(move || f(r))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        for n in [1usize, 2, 3, 4, 8] {
            let out = run_group(n, move |rank| {
                // Rank r contributes r+1 at position i → sum = n(n+1)/2.
                let mut buf = vec![(rank.rank() + 1) as f32; 10];
                rank.all_reduce_sum(&mut buf);
                buf
            });
            let expected = (n * (n + 1) / 2) as f32;
            for buf in out {
                assert!(buf.iter().all(|&v| (v - expected).abs() < 1e-5), "n={n}");
            }
        }
    }

    #[test]
    fn allreduce_handles_non_divisible_lengths() {
        // Buffer length 7 over 4 ranks exercises uneven chunks.
        let out = run_group(4, |rank| {
            let mut buf: Vec<f32> = (0..7).map(|i| (i * (rank.rank() + 1)) as f32).collect();
            rank.all_reduce_sum(&mut buf);
            buf
        });
        // Sum over ranks of i*(r+1) = i * 10.
        for buf in out {
            for (i, v) in buf.iter().enumerate() {
                assert!((v - (i as f64 * 10.0) as f32).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn allreduce_mean_averages() {
        let out = run_group(4, |rank| {
            let mut buf = vec![rank.rank() as f32; 5];
            rank.all_reduce_mean(&mut buf);
            buf
        });
        for buf in out {
            assert!(buf.iter().all(|&v| (v - 1.5).abs() < 1e-6));
        }
    }

    #[test]
    fn allreduce_empty_buffer_is_fine() {
        let out = run_group(3, |rank| {
            let mut buf: Vec<f32> = Vec::new();
            rank.all_reduce_sum(&mut buf);
            buf.len()
        });
        assert_eq!(out, vec![0, 0, 0]);
    }

    #[test]
    fn broadcast_copies_root_to_all() {
        for root in 0..3 {
            let out = run_group(3, move |rank| {
                let mut buf = vec![rank.rank() as f32 * 100.0; 4];
                rank.broadcast(&mut buf, root);
                buf
            });
            for buf in out {
                assert!(buf.iter().all(|&v| (v - root as f32 * 100.0).abs() < 1e-6));
            }
        }
    }

    #[test]
    fn repeated_collectives_stay_consistent() {
        let out = run_group(4, |rank| {
            let mut acc = 0f32;
            for round in 0..10 {
                let mut buf = vec![(rank.rank() + round) as f32; 3];
                rank.all_reduce_sum(&mut buf);
                acc += buf[0];
            }
            acc
        });
        // Each round sums (0+1+2+3) + 4*round = 6 + 4*round.
        let expected: f32 = (0..10).map(|r| 6.0 + 4.0 * r as f32).sum();
        for v in out {
            assert!((v - expected).abs() < 1e-4);
        }
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        for len in [0usize, 1, 7, 16, 100] {
            for n in [1usize, 2, 3, 4, 8] {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for i in 0..n {
                    let (s, e) = chunk_bounds(len, n, i);
                    assert_eq!(s, prev_end, "chunks must be contiguous");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, len, "chunks must cover the buffer");
            }
        }
    }

    #[test]
    fn lost_rank_errors_all_survivors_without_deadlock() {
        // Rank 2 of 4 "dies" (drops its endpoints without participating);
        // every survivor's try-collective must return an error rather
        // than hang, which is what lets the elastic trainer unwind and
        // rebuild a smaller group.
        let ranks = ProcessGroup::new(4);
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|rank| {
                std::thread::spawn(move || {
                    if rank.rank() == 2 {
                        return None; // dies: endpoints drop here
                    }
                    let mut buf = vec![1.0f32; 16];
                    Some(rank.try_all_reduce_sum(&mut buf))
                })
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(outcomes.iter().filter(|o| o.is_none()).count(), 1);
        for o in outcomes.into_iter().flatten() {
            assert!(o.is_err(), "survivors must observe the lost peer");
        }
    }

    #[test]
    fn try_new_rejects_empty_group() {
        let e = match ProcessGroup::try_new(0) {
            Err(e) => e,
            Ok(_) => panic!("empty group must be rejected"),
        };
        assert!(e.contains("at least one rank"), "{e}");
        assert_eq!(ProcessGroup::try_new(2).unwrap().len(), 2);
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        let out = run_group(1, |rank| {
            let mut buf = vec![3.5f32; 4];
            rank.all_reduce_sum(&mut buf);
            rank.broadcast(&mut buf, 0);
            buf
        });
        assert!(out[0].iter().all(|&v| v == 3.5));
    }
}
