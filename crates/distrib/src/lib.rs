//! # seaice-distrib
//!
//! Synchronous data-parallel distributed training — the Horovod + MPI
//! replacement for the paper's 8-GPU DGX A100 experiments (§III-C,
//! Table III, Fig. 12).
//!
//! * [`group`] — a process group of rank threads with the collective
//!   operations Horovod builds on: bandwidth-optimal **ring all-reduce**
//!   (Patarasuk–Yuan reduce-scatter + all-gather, the algorithm the paper
//!   cites), rank-0 broadcast, and barrier;
//! * [`optimizer`] — `DistributedOptimizer`, which averages gradients
//!   across ranks via all-reduce before stepping the wrapped optimizer
//!   (the `hvd.DistributedOptimizer(opt)` analog);
//! * [`trainer`] — the synchronous data-parallel U-Net training loop:
//!   shard the data, replicate the model, broadcast initial weights from
//!   rank 0, all-reduce gradients every step;
//! * [`perfmodel`] — a DGX A100 timing model calibrated against
//!   Table III, used to regenerate the paper's timing numbers (ranks here
//!   are host threads, not A100s; the *semantics* are real — distributed
//!   training is verified equivalent to single-process large-batch
//!   training — while the *timing* comes from the model).
//!
//! ```
//! use seaice_distrib::ProcessGroup;
//!
//! // Four ranks sum their buffers with the bandwidth-optimal ring.
//! let handles: Vec<_> = ProcessGroup::new(4)
//!     .into_iter()
//!     .map(|rank| std::thread::spawn(move || {
//!         let mut grad = vec![rank.rank() as f32; 8];
//!         rank.all_reduce_mean(&mut grad);
//!         grad[0]
//!     }))
//!     .collect();
//! for h in handles {
//!     assert_eq!(h.join().unwrap(), 1.5); // mean of 0,1,2,3
//! }
//! ```
#![forbid(unsafe_code)]

pub mod group;
pub mod optimizer;
pub mod perfmodel;
pub mod trainer;

pub use group::{CollectiveError, ProcessGroup, Rank};
pub use optimizer::DistributedOptimizer;
pub use perfmodel::DgxA100Model;
pub use trainer::{
    latest_spilled_checkpoint, rank_fault_key, train_distributed, train_distributed_elastic,
    DistTrainConfig, DistTrainReport, ElasticConfig, ResumePoint, TrainError,
};
