//! Synchronous data-parallel U-Net training (Fig. 8's "with Horovod"
//! pseudo-code): shard the data, replicate the model per rank, broadcast
//! rank 0's initial weights, and all-reduce-average gradients every step.
//!
//! Two entry points share one engine:
//!
//! * [`train_distributed`] — the strict path: any rank failure panics
//!   (the pre-elastic behavior, bit-identical to earlier releases);
//! * [`train_distributed_elastic`] — fault-tolerant: rank 0 checkpoints
//!   at epoch boundaries, a lost rank unwinds the survivors through the
//!   fallible collectives, and training resumes from the last checkpoint
//!   with the surviving rank set re-sharding the data (Horovod Elastic's
//!   model). The injection point for chaos tests sits right before each
//!   gradient all-reduce.

use crate::group::ProcessGroup;
use crate::optimizer::DistributedOptimizer;
use crate::perfmodel::DgxA100Model;
use seaice_faults::{mix, FaultPlan};
use seaice_nn::dataloader::{DataLoader, Sample};
use seaice_nn::loss::softmax_cross_entropy;
use seaice_nn::optim::Adam;
use seaice_unet::checkpoint::{self, Checkpoint};
use seaice_unet::{UNet, UNetConfig};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// Distributed training configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DistTrainConfig {
    /// Data-parallel width (the paper sweeps 1, 2, 4, 6, 8 GPUs).
    pub ranks: usize,
    /// Epochs (paper: 50).
    pub epochs: usize,
    /// Mini-batch size per rank (paper: 32 per GPU).
    pub batch_size_per_rank: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Per-epoch shuffling seed (`None` keeps deterministic order, which
    /// the single-process-equivalence tests rely on).
    pub shuffle_seed: Option<u64>,
}

/// Elastic-recovery knobs for [`train_distributed_elastic`].
#[derive(Clone, Default)]
pub struct ElasticConfig {
    /// Rank 0 snapshots the model every this-many epochs (0 → 1).
    pub checkpoint_every_epochs: usize,
    /// Recovery attempts allowed before giving up (0 → 8). Each rank
    /// failure consumes one generation.
    pub max_generations: usize,
    /// Abort instead of recovering once fewer than this many ranks
    /// survive (0 → 1).
    pub min_ranks: usize,
    /// Start from a prior checkpoint instead of fresh weights — how a
    /// planned resume (or a reference run for recovery tests) enters the
    /// middle of a schedule.
    pub resume: Option<ResumePoint>,
    /// When set, rank 0 also spills every epoch-boundary checkpoint to
    /// `ckpt_epoch_NNNN.json` in this directory through the durable
    /// layer (checksummed, atomic) — the on-disk state a *process*-level
    /// crash restarts from, where the in-memory slot only survives rank
    /// failures. Spill failures are counted in the report, never fatal.
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

/// Where a resumed run picks up.
#[derive(Clone)]
pub struct ResumePoint {
    /// First epoch the resumed run executes.
    pub epoch: usize,
    /// Weights at that epoch boundary.
    pub checkpoint: Checkpoint,
    /// Epoch losses already accumulated before `epoch` (prepended to the
    /// report so trajectories stay comparable).
    pub prior_losses: Vec<f32>,
}

/// Why an elastic run could not finish.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrainError {
    /// `ranks == 0`.
    NoRanks,
    /// Fewer samples than ranks — some shard would be empty.
    NotEnoughSamples {
        /// Usable (non-corrupt) sample count.
        samples: usize,
        /// Requested world size.
        ranks: usize,
    },
    /// Rank failures exhausted the generation budget.
    TooManyFailures {
        /// Generations consumed (initial run + recoveries).
        generations: usize,
    },
    /// The surviving world shrank below `min_ranks`.
    BelowMinRanks {
        /// Ranks left after the latest failure.
        survivors: usize,
        /// Configured floor.
        min_ranks: usize,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NoRanks => f.write_str("need at least one rank"),
            TrainError::NotEnoughSamples { samples, ranks } => {
                write!(f, "fewer samples ({samples}) than ranks ({ranks})")
            }
            TrainError::TooManyFailures { generations } => {
                write!(f, "rank failures exhausted {generations} generations")
            }
            TrainError::BelowMinRanks {
                survivors,
                min_ranks,
            } => write!(
                f,
                "only {survivors} ranks survive, below the configured minimum of {min_ranks}"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

/// Results of a distributed run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistTrainReport {
    /// Rank-0 mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Measured host wall-clock seconds for the whole run.
    pub measured_secs: f64,
    /// Simulated DGX seconds for the whole run (perf model); under
    /// faults this charges every generation, retried epochs included.
    pub simulated_secs: f64,
    /// Simulated throughput (images/s).
    pub simulated_images_per_sec: f64,
    /// Number of ranks used (the initial world size).
    pub ranks: usize,
    /// Samples per rank after equalizing shards (final generation).
    pub samples_per_rank: usize,
    /// Corrupt samples dropped before sharding (see
    /// `DataLoader::skipped`).
    pub skipped_samples: usize,
    /// Training generations executed (1 = no failures).
    pub generations: usize,
    /// Ranks lost to failures across the run.
    pub rank_failures: usize,
    /// Epoch each recovery resumed from (empty when nothing failed).
    pub resumed_from_epochs: Vec<usize>,
    /// World size of the final (successful) generation.
    pub final_ranks: usize,
    /// Epoch checkpoints spilled durably to `checkpoint_dir`.
    pub epoch_checkpoints_spilled: usize,
    /// Spill writes that failed (injected IO faults, full disk); the in-
    /// memory slot stayed authoritative so training continued.
    pub checkpoint_spill_failures: usize,
}

/// The deterministic fault key checked at the `distrib.allreduce` site
/// before rank `rank`'s gradient all-reduce of (`epoch`, `step`) in a
/// world of `world` ranks. Including the world size means a key targeted
/// at the original world cannot re-fire after recovery renumbers a
/// smaller group.
pub fn rank_fault_key(world: usize, rank: usize, epoch: usize, step: usize) -> u64 {
    mix(
        mix(world as u64, rank as u64),
        mix(epoch as u64, step as u64),
    )
}

/// Shards `samples` round-robin across `ranks`, truncating so every rank
/// gets the same count (synchronous SGD requires equal step counts).
fn shard(samples: &[Sample], ranks: usize) -> Vec<Vec<Sample>> {
    let per_rank = samples.len() / ranks;
    let mut shards = vec![Vec::with_capacity(per_rank); ranks];
    for (i, s) in samples.iter().take(per_rank * ranks).enumerate() {
        shards[i % ranks].push(s.clone());
    }
    shards
}

/// Last checkpointed state, shared between rank 0 and the coordinator so
/// a failed generation can resume from the most recent epoch boundary.
struct CheckpointSlot {
    /// First epoch a resume would run.
    next_epoch: usize,
    /// Weights at that boundary (`None` until the first checkpoint —
    /// resume restarts from fresh init).
    ckpt: Option<Checkpoint>,
    /// Epoch losses accumulated up to `next_epoch`.
    losses: Vec<f32>,
}

/// How one rank's generation ended.
enum RankOutcome {
    /// Ran every epoch; rank 0 carries the final snapshot.
    Finished {
        losses: Vec<f32>,
        snapshot: Option<Checkpoint>,
    },
    /// This rank was killed by the fault plan at `epoch`.
    Died { epoch: usize },
    /// A peer vanished; this rank unwound cleanly at `epoch`.
    PeerLost { epoch: usize },
}

/// Trains a U-Net with `cfg.ranks` synchronous data-parallel replicas and
/// returns rank 0's model plus the run report.
///
/// # Panics
/// Panics if there are fewer samples than ranks, or any rank panics.
pub fn train_distributed(
    unet_cfg: UNetConfig,
    samples: Vec<Sample>,
    cfg: DistTrainConfig,
    perf: &DgxA100Model,
) -> (UNet, DistTrainReport) {
    match train_distributed_elastic(
        unet_cfg,
        samples,
        cfg,
        perf,
        ElasticConfig::default(),
        Arc::new(FaultPlan::disabled()),
    ) {
        Ok(out) => out,
        // seaice-lint: allow(panic-in-library) reason="legacy infallible wrapper kept for the non-elastic API; it runs with FaultPlan::disabled(), so the only reachable errors are unusable configs worth crashing on"
        Err(e) => panic!("{e}"),
    }
}

/// Fault-tolerant distributed training. Rank 0 snapshots the model at
/// epoch boundaries (every `elastic.checkpoint_every_epochs`); when a
/// rank dies — in chaos tests, via the `distrib.allreduce` fault site
/// keyed by [`rank_fault_key`] — the survivors unwind through the
/// fallible collectives, the coordinator rebuilds a process group over
/// the surviving world size, re-shards the data, and resumes from the
/// last checkpoint. With no faults this is bit-identical to
/// [`train_distributed`].
///
/// # Errors
/// [`TrainError`] when the configuration is unusable, failures exhaust
/// `max_generations`, or the world shrinks below `min_ranks`.
pub fn train_distributed_elastic(
    unet_cfg: UNetConfig,
    samples: Vec<Sample>,
    cfg: DistTrainConfig,
    perf: &DgxA100Model,
    elastic: ElasticConfig,
    faults: Arc<FaultPlan>,
) -> Result<(UNet, DistTrainReport), TrainError> {
    if cfg.ranks == 0 {
        return Err(TrainError::NoRanks);
    }
    // seaice-lint: allow(wallclock-in-deterministic-path) reason="wall time feeds only DistTrainReport.wall_secs, a diagnostic; training order and outputs key off the simulated clock"
    let t0 = std::time::Instant::now();
    let checkpoint_every = elastic.checkpoint_every_epochs.max(1);
    let max_generations = if elastic.max_generations == 0 {
        8
    } else {
        elastic.max_generations
    };
    let min_ranks = elastic.min_ranks.max(1);

    // Corrupt tiles are dropped (and counted) before sharding so every
    // rank sees a clean, consistent dataset.
    let total_in = samples.len();
    let mut shape: Option<(usize, usize, usize)> = None;
    let samples: Vec<Sample> = samples
        .into_iter()
        .filter(|s| {
            if !s.is_consistent() {
                return false;
            }
            match shape {
                None => {
                    shape = Some(s.shape());
                    true
                }
                Some(sh) => s.shape() == sh,
            }
        })
        .collect();
    let skipped_samples = total_in - samples.len();
    if samples.len() < cfg.ranks {
        return Err(TrainError::NotEnoughSamples {
            samples: samples.len(),
            ranks: cfg.ranks,
        });
    }

    // Durable epoch-checkpoint spill (crash consistency across *process*
    // restarts, not just rank failures). Counters live outside the rank
    // threads so the report can attribute spills across generations.
    let spill_dir = elastic.checkpoint_dir.clone().map(Arc::new);
    let spilled = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let spill_failures = Arc::new(std::sync::atomic::AtomicUsize::new(0));

    let slot = Arc::new(Mutex::new(match elastic.resume {
        Some(r) => CheckpointSlot {
            next_epoch: r.epoch,
            ckpt: Some(r.checkpoint),
            losses: r.prior_losses,
        },
        None => CheckpointSlot {
            next_epoch: 0,
            ckpt: None,
            losses: Vec::new(),
        },
    }));

    let mut world = cfg.ranks;
    let mut generations = 0usize;
    let mut rank_failures = 0usize;
    let mut resumed_from_epochs = Vec::new();
    let mut simulated_secs = 0.0f64;

    // Observability: generations land on the *simulated* DGX timeline —
    // a ManualClock advanced by each generation's perf-model seconds —
    // so this crate never reads the wall clock for tracing (the Clock
    // split seaice-obs exists for). Instruments are inert unless the
    // process enabled metrics/tracing.
    let sim_clock = Arc::new(seaice_obs::ManualClock::new());
    let trace =
        seaice_obs::trace::tracer_with_clock(Arc::clone(&sim_clock) as Arc<dyn seaice_obs::Clock>);
    let obs = seaice_obs::metrics();
    let ctr_generations = obs.counter("distrib.generations");
    let ctr_rank_failures = obs.counter("distrib.rank_failures");
    let gauge_ips = obs.gauge("distrib.images_per_sec");

    loop {
        if generations >= max_generations {
            return Err(TrainError::TooManyFailures { generations });
        }
        generations += 1;

        let (start_epoch, init, prior_losses) = {
            let s = slot.lock().unwrap_or_else(|e| e.into_inner());
            (s.next_epoch, s.ckpt.clone().map(Arc::new), s.losses.clone())
        };
        let shards = shard(&samples, world);
        let samples_per_rank = shards[0].len();
        let ranks = ProcessGroup::new(world);

        let handles: Vec<_> = ranks
            .into_iter()
            .zip(shards)
            .map(|(rank, shard)| {
                let init = init.clone();
                let faults = Arc::clone(&faults);
                let slot = Arc::clone(&slot);
                let prior_losses = prior_losses.clone();
                let spill_dir = spill_dir.clone();
                let spilled = Arc::clone(&spilled);
                let spill_failures = Arc::clone(&spill_failures);
                std::thread::spawn(move || {
                    let r = rank.rank();
                    let w = rank.size();
                    let mut model = match &init {
                        Some(ckpt) => checkpoint::restore(ckpt),
                        None => UNet::new(unet_cfg),
                    };
                    // Broadcast initial weights from rank 0 (the
                    // `BroadcastGlobalVariablesCallback(0)` step). With a
                    // shared seed or checkpoint this is a no-op, but it
                    // guarantees identical replicas even if per-rank init
                    // ever diverges.
                    {
                        let mut params = model.params_mut();
                        let total: usize = params.iter().map(|p| p.value.len()).sum();
                        let mut fused = Vec::with_capacity(total);
                        for p in params.iter() {
                            fused.extend_from_slice(p.value.as_slice());
                        }
                        rank.broadcast(&mut fused, 0);
                        let mut off = 0;
                        for p in params.iter_mut() {
                            let len = p.value.len();
                            p.value
                                .as_mut_slice()
                                .copy_from_slice(&fused[off..off + len]);
                            off += len;
                        }
                    }

                    let loader = DataLoader::new(
                        shard,
                        cfg.batch_size_per_rank,
                        cfg.shuffle_seed.map(|s| s ^ r as u64),
                    );
                    let adam = Adam::new(cfg.learning_rate);
                    let mut opt = DistributedOptimizer::new(adam, &rank);
                    let mut epoch_losses = Vec::with_capacity(cfg.epochs - start_epoch);
                    for epoch in start_epoch..cfg.epochs {
                        let mut loss_sum = 0f64;
                        let mut batches = 0usize;
                        for (step, batch) in loader.epoch(epoch as u64).into_iter().enumerate() {
                            // The RankFailure injection point: this rank
                            // drops out right where the gradient
                            // all-reduce would begin, exactly how a lost
                            // node manifests to the ring.
                            if faults
                                .maybe_fail("distrib.allreduce", rank_fault_key(w, r, epoch, step))
                                .is_err()
                            {
                                return (r, RankOutcome::Died { epoch });
                            }
                            model.zero_grads();
                            let logits = model.forward(&batch.images, true);
                            let lo = softmax_cross_entropy(&logits, &batch.targets);
                            model.backward(&lo.grad);
                            if opt.try_step(&mut model.params_mut()).is_err() {
                                return (r, RankOutcome::PeerLost { epoch });
                            }
                            loss_sum += lo.loss as f64;
                            batches += 1;
                        }
                        epoch_losses.push((loss_sum / batches.max(1) as f64) as f32);
                        // Rank 0 owns checkpointing: after it finishes an
                        // epoch, every rank applied the same averaged
                        // gradients, so its weights ARE the global state.
                        if r == 0 && (epoch + 1) % checkpoint_every == 0 {
                            let snap = checkpoint::snapshot(&mut model);
                            {
                                let mut s = slot.lock().unwrap_or_else(|e| e.into_inner());
                                s.next_epoch = epoch + 1;
                                s.ckpt = Some(snap.clone());
                                s.losses = prior_losses
                                    .iter()
                                    .chain(epoch_losses.iter())
                                    .copied()
                                    .collect();
                            }
                            // Spill the same snapshot durably when a
                            // checkpoint directory was configured. A
                            // failed spill leaves the previous file
                            // intact (atomic rename), so it is counted,
                            // not fatal.
                            if let Some(dir) = &spill_dir {
                                let path = dir.join(format!("ckpt_epoch_{:04}.json", epoch + 1));
                                let ctx = seaice_obs::durable::DurableCtx::with_faults(Arc::clone(
                                    &faults,
                                ));
                                match checkpoint::save_checkpoint_payload(&snap, &path, &ctx) {
                                    Ok(()) => {
                                        spilled.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    }
                                    Err(_) => {
                                        spill_failures
                                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                    }
                    let snapshot = if r == 0 {
                        Some(checkpoint::snapshot(&mut model))
                    } else {
                        None
                    };
                    (
                        r,
                        RankOutcome::Finished {
                            losses: epoch_losses,
                            snapshot,
                        },
                    )
                })
            })
            .collect();

        let mut outcomes = Vec::with_capacity(world);
        for h in handles {
            // seaice-lint: allow(panic-in-library) reason="rank bodies catch injected faults and return RankOutcome::Died; a panic escaping to join() means the containment itself broke, which must not be silently absorbed"
            outcomes.push(h.join().expect("a rank panicked"));
        }

        let died: Vec<usize> = outcomes
            .iter()
            .filter_map(|(r, o)| matches!(o, RankOutcome::Died { .. }).then_some(*r))
            .collect();
        let failed_epoch = outcomes
            .iter()
            .filter_map(|(_, o)| match o {
                RankOutcome::Died { epoch } | RankOutcome::PeerLost { epoch } => Some(*epoch),
                RankOutcome::Finished { .. } => None,
            })
            .min();

        match failed_epoch {
            None => {
                // Clean generation: assemble the final model and report.
                let mut rank0_losses = Vec::new();
                let mut rank0_model = None;
                for (r, o) in outcomes {
                    if r == 0 {
                        if let RankOutcome::Finished { losses, snapshot } = o {
                            rank0_losses = losses;
                            rank0_model = snapshot;
                        }
                    }
                }
                // seaice-lint: allow(panic-in-library) reason="in a clean generation every rank Finished, and rank 0 always attaches its snapshot to Finished; a None is a coordinator bug, not a runtime condition"
                let model = checkpoint::restore(&rank0_model.expect("rank 0 snapshot missing"));
                let gen_secs = perf.total_time(world, cfg.epochs - start_epoch);
                simulated_secs += gen_secs;
                ctr_generations.incr(1);
                gauge_ips.set(perf.images_per_sec(cfg.ranks));
                if trace.is_enabled() {
                    let dur_us = (gen_secs * 1e6) as u64;
                    let end_us = sim_clock.advance_us(dur_us);
                    trace.complete_with_args(
                        "distrib.generation",
                        "distrib",
                        end_us.saturating_sub(dur_us),
                        dur_us,
                        &[
                            ("generation", &generations.to_string()),
                            ("world", &world.to_string()),
                            ("ok", "true"),
                        ],
                    );
                }
                let epoch_losses: Vec<f32> = prior_losses.into_iter().chain(rank0_losses).collect();
                let report = DistTrainReport {
                    epoch_losses,
                    measured_secs: t0.elapsed().as_secs_f64(),
                    simulated_secs,
                    simulated_images_per_sec: perf.images_per_sec(cfg.ranks),
                    ranks: cfg.ranks,
                    samples_per_rank,
                    skipped_samples,
                    generations,
                    rank_failures,
                    resumed_from_epochs,
                    final_ranks: world,
                    epoch_checkpoints_spilled: spilled.load(std::sync::atomic::Ordering::Relaxed),
                    checkpoint_spill_failures: spill_failures
                        .load(std::sync::atomic::Ordering::Relaxed),
                };
                return Ok((model, report));
            }
            Some(epoch) => {
                // Charge the epochs this generation actually attempted
                // (the partial epoch counts — the cluster ran it).
                let gen_secs = perf.total_time(world, epoch - start_epoch + 1);
                simulated_secs += gen_secs;
                ctr_generations.incr(1);
                ctr_rank_failures.incr(died.len() as u64);
                rank_failures += died.len();
                if trace.is_enabled() {
                    let dur_us = (gen_secs * 1e6) as u64;
                    let end_us = sim_clock.advance_us(dur_us);
                    trace.complete_with_args(
                        "distrib.generation",
                        "distrib",
                        end_us.saturating_sub(dur_us),
                        dur_us,
                        &[
                            ("generation", &generations.to_string()),
                            ("world", &world.to_string()),
                            ("ok", "false"),
                        ],
                    );
                }
                let survivors = world - died.len();
                if survivors < min_ranks {
                    return Err(TrainError::BelowMinRanks {
                        survivors,
                        min_ranks,
                    });
                }
                world = survivors;
                let resume_epoch = slot.lock().unwrap_or_else(|e| e.into_inner()).next_epoch;
                resumed_from_epochs.push(resume_epoch);
                trace.instant(
                    "distrib.recovery",
                    "distrib",
                    &[
                        ("survivors", &survivors.to_string()),
                        ("resume_epoch", &resume_epoch.to_string()),
                        ("ranks_lost", &died.len().to_string()),
                    ],
                );
            }
        }
    }
}

/// Scans `dir` for durably spilled `ckpt_epoch_NNNN.json` files and
/// returns the highest-epoch checkpoint that passes verification, with
/// its epoch number. Corrupt or unreadable files are skipped — a torn or
/// bit-flipped spill must never win over an older intact one — so this
/// is the process-restart entry point pairing with
/// [`ElasticConfig::checkpoint_dir`]: feed the result into
/// [`ResumePoint`] to continue a killed run.
///
/// # Errors
/// Only when `dir` itself cannot be listed; individual bad files are not
/// errors.
pub fn latest_spilled_checkpoint(
    dir: &std::path::Path,
    ctx: &seaice_obs::durable::DurableCtx,
) -> std::io::Result<Option<(usize, Checkpoint)>> {
    let mut best: Option<(usize, Checkpoint)> = None;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(num) = name
            .strip_prefix("ckpt_epoch_")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        let Ok(epoch) = num.parse::<usize>() else {
            continue;
        };
        if best.as_ref().is_some_and(|(e, _)| *e >= epoch) {
            continue;
        }
        if let Ok(ckpt) = checkpoint::read_checkpoint(&entry.path(), ctx) {
            best = Some((epoch, ckpt));
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seaice_faults::FaultAction;
    use seaice_unet::train::{train, TrainConfig};

    fn toy_samples(n: usize, side: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let class = (i % 3) as u8;
                let level = [0.9f32, 0.5, 0.05][class as usize];
                Sample {
                    image: vec![level; 3 * side * side],
                    mask: vec![class; side * side],
                    channels: 3,
                    height: side,
                    width: side,
                }
            })
            .collect()
    }

    fn tiny_cfg() -> UNetConfig {
        UNetConfig {
            depth: 1,
            base_filters: 4,
            dropout: 0.0,
            seed: 11,
            ..UNetConfig::paper()
        }
    }

    fn weights(model: &mut UNet) -> Vec<f32> {
        model
            .params_mut()
            .iter()
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect()
    }

    #[test]
    fn distributed_equals_single_process_large_batch() {
        // 2 ranks × batch 2 must equal 1 process × batch 4: round-robin
        // shards make the union of per-rank step-k batches exactly the
        // single-process step-k batch, and averaged gradients match.
        let samples = toy_samples(8, 8);
        let dist_cfg = DistTrainConfig {
            ranks: 2,
            epochs: 2,
            batch_size_per_rank: 2,
            learning_rate: 1e-3,
            shuffle_seed: None,
        };
        let (mut dist_model, _) = train_distributed(
            tiny_cfg(),
            samples.clone(),
            dist_cfg,
            &DgxA100Model::dgx_a100(),
        );

        let mut single = UNet::new(tiny_cfg());
        let loader = DataLoader::new(samples, 4, None);
        train(
            &mut single,
            &loader,
            &TrainConfig {
                epochs: 2,
                learning_rate: 1e-3,
                log_every: 0,
            },
        );

        let x = seaice_nn::init::uniform(&[1, 3, 8, 8], 0.0, 1.0, 5);
        let yd = dist_model.forward(&x, false);
        let ys = single.forward(&x, false);
        let max_diff = yd
            .as_slice()
            .iter()
            .zip(ys.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max);
        assert!(
            max_diff < 1e-3,
            "distributed and single-process outputs diverged by {max_diff}"
        );
    }

    #[test]
    fn distributed_training_is_deterministic() {
        let run = || {
            let (_, report) = train_distributed(
                tiny_cfg(),
                toy_samples(8, 8),
                DistTrainConfig {
                    ranks: 4,
                    epochs: 2,
                    batch_size_per_rank: 1,
                    learning_rate: 1e-3,
                    shuffle_seed: Some(3),
                },
                &DgxA100Model::dgx_a100(),
            );
            report.epoch_losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn distributed_training_learns() {
        let (mut model, report) = train_distributed(
            tiny_cfg(),
            toy_samples(12, 8),
            DistTrainConfig {
                ranks: 2,
                // 15 epochs leaves the 4-filter net right at the decision
                // boundary on some weight-init streams; 30 converges with
                // margin and still runs in well under a second.
                epochs: 30,
                batch_size_per_rank: 2,
                learning_rate: 5e-3,
                shuffle_seed: Some(1),
            },
            &DgxA100Model::dgx_a100(),
        );
        assert!(report.epoch_losses.last().unwrap() < &report.epoch_losses[0]);
        // Predict on a bright (thick-ice-like) input.
        let x = seaice_nn::Tensor::full(&[1, 3, 8, 8], 0.9);
        let preds = model.predict(&x);
        let thick = preds.iter().filter(|&&c| c == 0).count();
        assert!(
            thick > 48,
            "bright input should classify mostly thick, got {thick}/64"
        );
    }

    #[test]
    fn shards_are_equal_sized_and_cover_prefix() {
        let samples = toy_samples(10, 8);
        let shards = shard(&samples, 3);
        assert_eq!(shards.len(), 3);
        assert!(shards.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn report_carries_simulated_dgx_times() {
        let (_, report) = train_distributed(
            tiny_cfg(),
            toy_samples(8, 8),
            DistTrainConfig {
                ranks: 8,
                epochs: 1,
                batch_size_per_rank: 1,
                learning_rate: 1e-3,
                shuffle_seed: None,
            },
            &DgxA100Model::dgx_a100(),
        );
        let expected = DgxA100Model::dgx_a100().total_time(8, 1);
        assert!((report.simulated_secs - expected).abs() < 1e-9);
        assert_eq!(report.ranks, 8);
        assert_eq!(report.samples_per_rank, 1);
        assert_eq!(report.generations, 1);
        assert_eq!(report.rank_failures, 0);
        assert_eq!(report.final_ranks, 8);
    }

    #[test]
    fn corrupt_samples_are_skipped_and_reported() {
        let mut samples = toy_samples(9, 8);
        samples[4].image.truncate(10); // torn tile
        let (_, report) = train_distributed(
            tiny_cfg(),
            samples,
            DistTrainConfig {
                ranks: 2,
                epochs: 1,
                batch_size_per_rank: 2,
                learning_rate: 1e-3,
                shuffle_seed: None,
            },
            &DgxA100Model::dgx_a100(),
        );
        assert_eq!(report.skipped_samples, 1);
        assert_eq!(report.samples_per_rank, 4);
    }

    #[test]
    fn elastic_errors_are_descriptive() {
        let e = train_distributed_elastic(
            tiny_cfg(),
            toy_samples(2, 8),
            DistTrainConfig {
                ranks: 4,
                epochs: 1,
                batch_size_per_rank: 1,
                learning_rate: 1e-3,
                shuffle_seed: None,
            },
            &DgxA100Model::dgx_a100(),
            ElasticConfig::default(),
            Arc::new(FaultPlan::disabled()),
        );
        let e = match e {
            Err(e) => e,
            Ok(_) => panic!("expected an error"),
        };
        assert_eq!(
            e,
            TrainError::NotEnoughSamples {
                samples: 2,
                ranks: 4
            }
        );
        assert!(e.to_string().contains("fewer samples"));
    }

    #[test]
    fn rank_failure_recovers_and_matches_planned_resume() {
        // Chaos run: 4 ranks, rank 3 dies entering epoch 1 step 0 (an
        // epoch boundary, so no training step is lost). The run must
        // recover onto 3 ranks from the epoch-1 checkpoint and finish.
        let total_epochs = 3usize;
        let cfg = |ranks| DistTrainConfig {
            ranks,
            epochs: total_epochs,
            batch_size_per_rank: 2,
            learning_rate: 2e-3,
            shuffle_seed: Some(7),
        };
        let samples = toy_samples(12, 8);
        let plan = FaultPlan::seeded(5).fail_keys(
            "distrib.allreduce",
            &[rank_fault_key(4, 3, 1, 0)],
            FaultAction::Error,
        );
        let (mut chaos_model, chaos_report) = train_distributed_elastic(
            tiny_cfg(),
            samples.clone(),
            cfg(4),
            &DgxA100Model::dgx_a100(),
            ElasticConfig::default(),
            Arc::new(plan),
        )
        .unwrap();
        assert_eq!(chaos_report.generations, 2);
        assert_eq!(chaos_report.rank_failures, 1);
        assert_eq!(chaos_report.resumed_from_epochs, vec![1]);
        assert_eq!(chaos_report.final_ranks, 3);
        assert_eq!(chaos_report.epoch_losses.len(), total_epochs);

        // Reference: the same schedule run on purpose — 4 ranks for
        // epoch 0, then a planned resume on 3 ranks for epochs 1..3.
        let (mut phase1, r1) = train_distributed_elastic(
            tiny_cfg(),
            samples.clone(),
            DistTrainConfig {
                epochs: 1,
                ..cfg(4)
            },
            &DgxA100Model::dgx_a100(),
            ElasticConfig::default(),
            Arc::new(FaultPlan::disabled()),
        )
        .unwrap();
        let (mut reference, r2) = train_distributed_elastic(
            tiny_cfg(),
            samples,
            cfg(3),
            &DgxA100Model::dgx_a100(),
            ElasticConfig {
                resume: Some(ResumePoint {
                    epoch: 1,
                    checkpoint: checkpoint::snapshot(&mut phase1),
                    prior_losses: r1.epoch_losses.clone(),
                }),
                ..ElasticConfig::default()
            },
            Arc::new(FaultPlan::disabled()),
        )
        .unwrap();
        assert_eq!(
            chaos_report.epoch_losses, r2.epoch_losses,
            "recovered loss trajectory must match the planned resume"
        );
        assert_eq!(
            weights(&mut chaos_model),
            weights(&mut reference),
            "recovered weights must be bit-identical to the planned resume"
        );
    }

    #[test]
    fn elastic_without_faults_is_bit_identical_to_strict() {
        let cfg = DistTrainConfig {
            ranks: 3,
            epochs: 2,
            batch_size_per_rank: 2,
            learning_rate: 1e-3,
            shuffle_seed: Some(9),
        };
        let (mut strict, strict_report) = train_distributed(
            tiny_cfg(),
            toy_samples(9, 8),
            cfg,
            &DgxA100Model::dgx_a100(),
        );
        let (mut elastic, elastic_report) = train_distributed_elastic(
            tiny_cfg(),
            toy_samples(9, 8),
            cfg,
            &DgxA100Model::dgx_a100(),
            ElasticConfig {
                checkpoint_every_epochs: 1,
                ..ElasticConfig::default()
            },
            Arc::new(FaultPlan::disabled()),
        )
        .unwrap();
        assert_eq!(weights(&mut strict), weights(&mut elastic));
        assert_eq!(strict_report.epoch_losses, elastic_report.epoch_losses);
        assert_eq!(strict_report.simulated_secs, elastic_report.simulated_secs);
    }

    #[test]
    fn elastic_runs_emit_sim_clock_generation_events_and_counters() {
        seaice_obs::trace::enable();
        let m = seaice_obs::enable_metrics();
        let before = m.counter("distrib.generations").get();
        // Rank 2 of 3 dies entering epoch 1, forcing a recovery.
        let plan = FaultPlan::seeded(8).fail_keys(
            "distrib.allreduce",
            &[rank_fault_key(3, 2, 1, 0)],
            FaultAction::Error,
        );
        let (_, report) = train_distributed_elastic(
            tiny_cfg(),
            toy_samples(9, 8),
            DistTrainConfig {
                ranks: 3,
                epochs: 2,
                batch_size_per_rank: 2,
                learning_rate: 1e-3,
                shuffle_seed: Some(4),
            },
            &DgxA100Model::dgx_a100(),
            ElasticConfig::default(),
            Arc::new(plan),
        )
        .unwrap();
        assert_eq!(report.generations, 2);
        assert!(m.counter("distrib.generations").get() >= before + 2);
        assert!(m.counter("distrib.rank_failures").get() >= 1);
        assert!(m.gauge("distrib.images_per_sec").get() > 0.0);
        let json = seaice_obs::trace::export_chrome_json();
        assert!(json.contains("\"name\": \"distrib.generation\""), "{json}");
        assert!(json.contains("\"name\": \"distrib.recovery\""), "{json}");
        seaice_obs::trace::validate_chrome_trace(&json).expect("valid chrome trace");
    }

    #[test]
    fn below_min_ranks_aborts_with_error() {
        // Both surviving... all four ranks die at once: world would drop
        // to 2, below the floor of 3.
        let plan = FaultPlan::seeded(6).fail_keys(
            "distrib.allreduce",
            &[rank_fault_key(4, 1, 0, 0), rank_fault_key(4, 2, 0, 0)],
            FaultAction::Error,
        );
        let e = train_distributed_elastic(
            tiny_cfg(),
            toy_samples(8, 8),
            DistTrainConfig {
                ranks: 4,
                epochs: 2,
                batch_size_per_rank: 1,
                learning_rate: 1e-3,
                shuffle_seed: None,
            },
            &DgxA100Model::dgx_a100(),
            ElasticConfig {
                min_ranks: 3,
                ..ElasticConfig::default()
            },
            Arc::new(plan),
        );
        let e = match e {
            Err(e) => e,
            Ok(_) => panic!("expected an error"),
        };
        assert_eq!(
            e,
            TrainError::BelowMinRanks {
                survivors: 2,
                min_ranks: 3
            }
        );
    }

    #[test]
    fn epoch_checkpoints_spill_durably_and_latest_restores_final_weights() {
        let dir = std::env::temp_dir().join(format!("seaice-distrib-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let (mut model, report) = train_distributed_elastic(
            tiny_cfg(),
            toy_samples(8, 8),
            DistTrainConfig {
                ranks: 2,
                epochs: 3,
                batch_size_per_rank: 2,
                learning_rate: 1e-3,
                shuffle_seed: Some(9),
            },
            &DgxA100Model::dgx_a100(),
            ElasticConfig {
                checkpoint_every_epochs: 1,
                checkpoint_dir: Some(dir.clone()),
                ..ElasticConfig::default()
            },
            Arc::new(FaultPlan::disabled()),
        )
        .unwrap();
        assert_eq!(report.epoch_checkpoints_spilled, 3);
        assert_eq!(report.checkpoint_spill_failures, 0);

        let ctx = seaice_obs::durable::DurableCtx::disabled();
        let (epoch, ckpt) = latest_spilled_checkpoint(&dir, &ctx)
            .unwrap()
            .expect("a spilled checkpoint");
        assert_eq!(epoch, 3);
        let mut restored = checkpoint::restore(&ckpt);
        assert_eq!(weights(&mut restored), weights(&mut model));

        // A corrupt highest-epoch spill must lose to the older intact one
        // — recovery never trusts an unverifiable file.
        let newest = dir.join("ckpt_epoch_0003.json");
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&newest, &bytes).unwrap();
        let (epoch, _) = latest_spilled_checkpoint(&dir, &ctx)
            .unwrap()
            .expect("an older intact checkpoint");
        assert_eq!(epoch, 2);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
