//! Synchronous data-parallel U-Net training (Fig. 8's "with Horovod"
//! pseudo-code): shard the data, replicate the model per rank, broadcast
//! rank 0's initial weights, and all-reduce-average gradients every step.

use crate::group::ProcessGroup;
use crate::optimizer::DistributedOptimizer;
use crate::perfmodel::DgxA100Model;
use seaice_nn::dataloader::{DataLoader, Sample};
use seaice_nn::loss::softmax_cross_entropy;
use seaice_nn::optim::{Adam, Optimizer};
use seaice_unet::checkpoint;
use seaice_unet::{UNet, UNetConfig};
use serde::{Deserialize, Serialize};

/// Distributed training configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DistTrainConfig {
    /// Data-parallel width (the paper sweeps 1, 2, 4, 6, 8 GPUs).
    pub ranks: usize,
    /// Epochs (paper: 50).
    pub epochs: usize,
    /// Mini-batch size per rank (paper: 32 per GPU).
    pub batch_size_per_rank: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Per-epoch shuffling seed (`None` keeps deterministic order, which
    /// the single-process-equivalence tests rely on).
    pub shuffle_seed: Option<u64>,
}

/// Results of a distributed run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistTrainReport {
    /// Rank-0 mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Measured host wall-clock seconds for the whole run.
    pub measured_secs: f64,
    /// Simulated DGX seconds for the whole run (perf model).
    pub simulated_secs: f64,
    /// Simulated throughput (images/s).
    pub simulated_images_per_sec: f64,
    /// Number of ranks used.
    pub ranks: usize,
    /// Samples per rank after equalizing shards.
    pub samples_per_rank: usize,
}

/// Shards `samples` round-robin across `ranks`, truncating so every rank
/// gets the same count (synchronous SGD requires equal step counts).
fn shard(samples: &[Sample], ranks: usize) -> Vec<Vec<Sample>> {
    let per_rank = samples.len() / ranks;
    let mut shards = vec![Vec::with_capacity(per_rank); ranks];
    for (i, s) in samples.iter().take(per_rank * ranks).enumerate() {
        shards[i % ranks].push(s.clone());
    }
    shards
}

/// Trains a U-Net with `cfg.ranks` synchronous data-parallel replicas and
/// returns rank 0's model plus the run report.
///
/// # Panics
/// Panics if there are fewer samples than ranks, or any rank panics.
pub fn train_distributed(
    unet_cfg: UNetConfig,
    samples: Vec<Sample>,
    cfg: DistTrainConfig,
    perf: &DgxA100Model,
) -> (UNet, DistTrainReport) {
    assert!(cfg.ranks > 0, "need at least one rank");
    assert!(
        samples.len() >= cfg.ranks,
        "fewer samples ({}) than ranks ({})",
        samples.len(),
        cfg.ranks
    );
    let t0 = std::time::Instant::now();
    let shards = shard(&samples, cfg.ranks);
    let samples_per_rank = shards[0].len();
    let ranks = ProcessGroup::new(cfg.ranks);

    let handles: Vec<_> = ranks
        .into_iter()
        .zip(shards)
        .map(|(rank, shard)| {
            std::thread::spawn(move || {
                let mut model = UNet::new(unet_cfg);
                // Broadcast initial weights from rank 0 (the
                // `BroadcastGlobalVariablesCallback(0)` step). With a
                // shared seed this is a no-op, but it guarantees identical
                // replicas even if per-rank init ever diverges.
                {
                    let mut params = model.params_mut();
                    let total: usize = params.iter().map(|p| p.value.len()).sum();
                    let mut fused = Vec::with_capacity(total);
                    for p in params.iter() {
                        fused.extend_from_slice(p.value.as_slice());
                    }
                    rank.broadcast(&mut fused, 0);
                    let mut off = 0;
                    for p in params.iter_mut() {
                        let len = p.value.len();
                        p.value
                            .as_mut_slice()
                            .copy_from_slice(&fused[off..off + len]);
                        off += len;
                    }
                }

                let loader = DataLoader::new(
                    shard,
                    cfg.batch_size_per_rank,
                    cfg.shuffle_seed.map(|s| s ^ rank.rank() as u64),
                );
                let adam = Adam::new(cfg.learning_rate);
                let mut opt = DistributedOptimizer::new(adam, &rank);
                let mut epoch_losses = Vec::with_capacity(cfg.epochs);
                for epoch in 0..cfg.epochs {
                    let mut loss_sum = 0f64;
                    let mut batches = 0usize;
                    for batch in loader.epoch(epoch as u64) {
                        model.zero_grads();
                        let logits = model.forward(&batch.images, true);
                        let lo = softmax_cross_entropy(&logits, &batch.targets);
                        model.backward(&lo.grad);
                        opt.step(&mut model.params_mut());
                        loss_sum += lo.loss as f64;
                        batches += 1;
                    }
                    epoch_losses.push((loss_sum / batches.max(1) as f64) as f32);
                }
                let snapshot = if rank.rank() == 0 {
                    Some(checkpoint::snapshot(&mut model))
                } else {
                    None
                };
                (rank.rank(), epoch_losses, snapshot)
            })
        })
        .collect();

    let mut rank0_losses = Vec::new();
    let mut rank0_model = None;
    for h in handles {
        let (r, losses, snap) = h.join().expect("a rank panicked");
        if r == 0 {
            rank0_losses = losses;
            rank0_model = snap;
        }
    }
    let model = checkpoint::restore(&rank0_model.expect("rank 0 snapshot missing"));

    let report = DistTrainReport {
        epoch_losses: rank0_losses,
        measured_secs: t0.elapsed().as_secs_f64(),
        simulated_secs: perf.total_time(cfg.ranks, cfg.epochs),
        simulated_images_per_sec: perf.images_per_sec(cfg.ranks),
        ranks: cfg.ranks,
        samples_per_rank,
    };
    (model, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seaice_unet::train::{train, TrainConfig};

    fn toy_samples(n: usize, side: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let class = (i % 3) as u8;
                let level = [0.9f32, 0.5, 0.05][class as usize];
                Sample {
                    image: vec![level; 3 * side * side],
                    mask: vec![class; side * side],
                    channels: 3,
                    height: side,
                    width: side,
                }
            })
            .collect()
    }

    fn tiny_cfg() -> UNetConfig {
        UNetConfig {
            depth: 1,
            base_filters: 4,
            dropout: 0.0,
            seed: 11,
            ..UNetConfig::paper()
        }
    }

    #[test]
    fn distributed_equals_single_process_large_batch() {
        // 2 ranks × batch 2 must equal 1 process × batch 4: round-robin
        // shards make the union of per-rank step-k batches exactly the
        // single-process step-k batch, and averaged gradients match.
        let samples = toy_samples(8, 8);
        let dist_cfg = DistTrainConfig {
            ranks: 2,
            epochs: 2,
            batch_size_per_rank: 2,
            learning_rate: 1e-3,
            shuffle_seed: None,
        };
        let (mut dist_model, _) = train_distributed(
            tiny_cfg(),
            samples.clone(),
            dist_cfg,
            &DgxA100Model::dgx_a100(),
        );

        let mut single = UNet::new(tiny_cfg());
        let loader = DataLoader::new(samples, 4, None);
        train(
            &mut single,
            &loader,
            &TrainConfig {
                epochs: 2,
                learning_rate: 1e-3,
                log_every: 0,
            },
        );

        let x = seaice_nn::init::uniform(&[1, 3, 8, 8], 0.0, 1.0, 5);
        let yd = dist_model.forward(&x, false);
        let ys = single.forward(&x, false);
        let max_diff = yd
            .as_slice()
            .iter()
            .zip(ys.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max);
        assert!(
            max_diff < 1e-3,
            "distributed and single-process outputs diverged by {max_diff}"
        );
    }

    #[test]
    fn distributed_training_is_deterministic() {
        let run = || {
            let (_, report) = train_distributed(
                tiny_cfg(),
                toy_samples(8, 8),
                DistTrainConfig {
                    ranks: 4,
                    epochs: 2,
                    batch_size_per_rank: 1,
                    learning_rate: 1e-3,
                    shuffle_seed: Some(3),
                },
                &DgxA100Model::dgx_a100(),
            );
            report.epoch_losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn distributed_training_learns() {
        let (mut model, report) = train_distributed(
            tiny_cfg(),
            toy_samples(12, 8),
            DistTrainConfig {
                ranks: 2,
                // 15 epochs leaves the 4-filter net right at the decision
                // boundary on some weight-init streams; 30 converges with
                // margin and still runs in well under a second.
                epochs: 30,
                batch_size_per_rank: 2,
                learning_rate: 5e-3,
                shuffle_seed: Some(1),
            },
            &DgxA100Model::dgx_a100(),
        );
        assert!(report.epoch_losses.last().unwrap() < &report.epoch_losses[0]);
        // Predict on a bright (thick-ice-like) input.
        let x = seaice_nn::Tensor::full(&[1, 3, 8, 8], 0.9);
        let preds = model.predict(&x);
        let thick = preds.iter().filter(|&&c| c == 0).count();
        assert!(
            thick > 48,
            "bright input should classify mostly thick, got {thick}/64"
        );
    }

    #[test]
    fn shards_are_equal_sized_and_cover_prefix() {
        let samples = toy_samples(10, 8);
        let shards = shard(&samples, 3);
        assert_eq!(shards.len(), 3);
        assert!(shards.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn report_carries_simulated_dgx_times() {
        let (_, report) = train_distributed(
            tiny_cfg(),
            toy_samples(8, 8),
            DistTrainConfig {
                ranks: 8,
                epochs: 1,
                batch_size_per_rank: 1,
                learning_rate: 1e-3,
                shuffle_seed: None,
            },
            &DgxA100Model::dgx_a100(),
        );
        let expected = DgxA100Model::dgx_a100().total_time(8, 1);
        assert!((report.simulated_secs - expected).abs() < 1e-9);
        assert_eq!(report.ranks, 8);
        assert_eq!(report.samples_per_rank, 1);
    }
}
