//! DGX A100 timing model, calibrated against Table III.
//!
//! Per-epoch time decomposes as
//!
//! ```text
//! T(N) = h + C / N + c · (N − 1) / N
//! ```
//!
//! * `h` — host-side input pipeline and batch preparation per epoch; it
//!   does not shrink with more GPUs and is exactly the "data
//!   preprocessing and subsequent batch preparation, resulting in GPU
//!   starvation" the paper blames for the sub-linear tail;
//! * `C` — single-GPU compute per epoch, divided by the data-parallel
//!   width;
//! * `c·(N−1)/N` — ring all-reduce cost, which approaches a constant as
//!   `N` grows (the bandwidth-optimal property).
//!
//! Calibration (`dgx_a100`): `h = 0.085 s`, `C = 5.53 s`, `c = 0.005 s`
//! matches all five published rows within ~2 %.

use serde::{Deserialize, Serialize};

/// Calibrated epoch-time model for distributed U-Net training.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DgxA100Model {
    /// Host input-pipeline seconds per epoch (not parallelized).
    pub host_secs_per_epoch: f64,
    /// Single-GPU compute seconds per epoch.
    pub compute_secs_per_epoch: f64,
    /// Asymptotic ring all-reduce seconds per epoch.
    pub ring_secs_per_epoch: f64,
    /// Images consumed per epoch (the paper's 80 % training split of
    /// 4224 tiles, ≈ 3379).
    pub images_per_epoch: usize,
}

impl Default for DgxA100Model {
    fn default() -> Self {
        Self::dgx_a100()
    }
}

impl DgxA100Model {
    /// Calibration against the paper's Table III (50 epochs, batch 32 per
    /// GPU, NVIDIA DGX A100).
    pub fn dgx_a100() -> Self {
        Self {
            host_secs_per_epoch: 0.085,
            compute_secs_per_epoch: 5.53,
            ring_secs_per_epoch: 0.005,
            images_per_epoch: 3379,
        }
    }

    /// Rescales the compute term from a measured host run: if one epoch
    /// of the (possibly reduced) workload took `measured_secs` on this
    /// host, treat that as the single-GPU compute cost instead of the
    /// calibrated A100 value. Keeps `h` and `c` proportional.
    pub fn scaled_from_measurement(measured_epoch_secs: f64, images_per_epoch: usize) -> Self {
        let base = Self::dgx_a100();
        let ratio = measured_epoch_secs / base.compute_secs_per_epoch;
        Self {
            host_secs_per_epoch: base.host_secs_per_epoch * ratio,
            compute_secs_per_epoch: measured_epoch_secs,
            ring_secs_per_epoch: base.ring_secs_per_epoch * ratio,
            images_per_epoch,
        }
    }

    /// Simulated seconds per epoch with `n_gpus` data-parallel workers.
    ///
    /// # Panics
    /// Panics if `n_gpus == 0`.
    pub fn epoch_time(&self, n_gpus: usize) -> f64 {
        assert!(n_gpus > 0, "need at least one GPU");
        let n = n_gpus as f64;
        self.host_secs_per_epoch
            + self.compute_secs_per_epoch / n
            + self.ring_secs_per_epoch * (n - 1.0) / n
    }

    /// Simulated total training seconds.
    pub fn total_time(&self, n_gpus: usize, epochs: usize) -> f64 {
        self.epoch_time(n_gpus) * epochs as f64
    }

    /// Simulated throughput in images per second.
    pub fn images_per_sec(&self, n_gpus: usize) -> f64 {
        self.images_per_epoch as f64 / self.epoch_time(n_gpus)
    }

    /// Simulated speedup over a single GPU.
    pub fn speedup(&self, n_gpus: usize) -> f64 {
        self.epoch_time(1) / self.epoch_time(n_gpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table III rows: (GPUs, total s, s/epoch, imgs/s).
    const TABLE3: [(usize, f64, f64, f64); 5] = [
        (1, 280.72, 5.5, 585.88),
        (2, 142.98, 2.778, 1160.81),
        (4, 74.09, 1.45, 2229.56),
        (6, 51.56, 0.97, 3330.03),
        (8, 38.91, 0.79, 4248.56),
    ];

    #[test]
    fn epoch_times_match_table3() {
        let m = DgxA100Model::dgx_a100();
        for (gpus, total, _, _) in TABLE3 {
            let sim = m.total_time(gpus, 50);
            let rel = (sim - total).abs() / total;
            assert!(
                rel < 0.05,
                "{gpus} GPUs: simulated {sim:.1}s vs paper {total}s (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn speedup_matches_table3_tail() {
        let m = DgxA100Model::dgx_a100();
        let s8 = m.speedup(8);
        assert!(
            (s8 - 7.21).abs() < 0.25,
            "8-GPU speedup {s8:.2} vs paper 7.21"
        );
        let s2 = m.speedup(2);
        assert!((s2 - 1.96).abs() < 0.1, "2-GPU speedup {s2:.2}");
    }

    #[test]
    fn throughput_matches_table3() {
        let m = DgxA100Model::dgx_a100();
        for (gpus, _, _, imgs) in TABLE3 {
            let sim = m.images_per_sec(gpus);
            let rel = (sim - imgs).abs() / imgs;
            assert!(
                rel < 0.06,
                "{gpus} GPUs: {sim:.0} imgs/s vs paper {imgs} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn speedup_is_sublinear_due_to_host_bottleneck() {
        let m = DgxA100Model::dgx_a100();
        for gpus in [2usize, 4, 6, 8] {
            let s = m.speedup(gpus);
            assert!(s < gpus as f64, "speedup must stay sub-linear");
            assert!(s > gpus as f64 * 0.8, "but close to linear");
        }
    }

    #[test]
    fn scaled_model_preserves_speedup_shape() {
        let a100 = DgxA100Model::dgx_a100();
        let scaled = DgxA100Model::scaled_from_measurement(55.3, 500);
        for gpus in [1usize, 2, 8] {
            assert!((scaled.speedup(gpus) - a100.speedup(gpus)).abs() < 1e-9);
        }
        assert!((scaled.epoch_time(1) - 10.0 * a100.epoch_time(1)).abs() < 1e-9);
    }
}
