//! Global thresholding: binary, truncated, to-zero, and Otsu's automatic
//! threshold selection — the `cv::threshold` family the paper's
//! cloud/shadow filter composes.

use crate::buffer::Image;
use crate::histogram::histogram_u8;

/// Thresholding rule applied per sample, mirroring OpenCV's
/// `THRESH_BINARY`, `THRESH_BINARY_INV`, `THRESH_TRUNC`, `THRESH_TOZERO`,
/// and `THRESH_TOZERO_INV`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThresholdType {
    /// `v > t ? max : 0`
    Binary,
    /// `v > t ? 0 : max`
    BinaryInv,
    /// `v > t ? t : v` — "truncated" thresholding.
    Trunc,
    /// `v > t ? v : 0`
    ToZero,
    /// `v > t ? 0 : v`
    ToZeroInv,
}

/// Applies a global threshold `t` to a single-channel 8-bit image.
///
/// `max_value` plays the role of OpenCV's `maxval` for the binary modes.
///
/// # Panics
/// Panics if `src` is not single-channel.
pub fn threshold(src: &Image<u8>, t: u8, max_value: u8, ty: ThresholdType) -> Image<u8> {
    assert_eq!(
        src.channels(),
        1,
        "threshold expects a single-channel image"
    );
    src.map(|v| apply_threshold(v, t, max_value, ty))
}

#[inline]
fn apply_threshold(v: u8, t: u8, max_value: u8, ty: ThresholdType) -> u8 {
    match ty {
        ThresholdType::Binary => {
            if v > t {
                max_value
            } else {
                0
            }
        }
        ThresholdType::BinaryInv => {
            if v > t {
                0
            } else {
                max_value
            }
        }
        ThresholdType::Trunc => {
            if v > t {
                t
            } else {
                v
            }
        }
        ThresholdType::ToZero => {
            if v > t {
                v
            } else {
                0
            }
        }
        ThresholdType::ToZeroInv => {
            if v > t {
                0
            } else {
                v
            }
        }
    }
}

/// Computes Otsu's optimal global threshold for a single-channel 8-bit
/// image by maximizing between-class variance over the 256-bin histogram.
///
/// Returns the threshold level; pixels `> t` belong to the bright class
/// when used with [`ThresholdType::Binary`]. For a constant image the
/// threshold equals that constant value.
///
/// # Panics
/// Panics if `src` is not single-channel or is empty.
pub fn otsu_threshold(src: &Image<u8>) -> u8 {
    assert_eq!(src.channels(), 1, "otsu expects a single-channel image");
    let hist = histogram_u8(src);
    let total: u64 = hist.iter().sum();
    assert!(total > 0, "otsu on an empty image");

    let sum_all: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, &c)| i as f64 * c as f64)
        .sum();

    let mut w_bg = 0f64; // background weight (count)
    let mut sum_bg = 0f64;
    let mut best_t = 0u8;
    let mut best_var = -1f64;

    for (t, &count) in hist.iter().enumerate() {
        w_bg += count as f64;
        if w_bg == 0.0 {
            continue;
        }
        let w_fg = total as f64 - w_bg;
        if w_fg == 0.0 {
            break;
        }
        sum_bg += t as f64 * count as f64;
        let mean_bg = sum_bg / w_bg;
        let mean_fg = (sum_all - sum_bg) / w_fg;
        let between = w_bg * w_fg * (mean_bg - mean_fg).powi(2);
        if between > best_var {
            best_var = between;
            // seaice-lint: allow(narrowing-cast-in-kernel) reason="t indexes the 256-bin histogram, so t <= 255 always fits u8"
            best_t = t as u8;
        }
    }
    if best_var < 0.0 {
        // Degenerate (constant) histogram: every pixel has the same value;
        // return that value so `> t` marks nothing as foreground.
        best_t = hist
            .iter()
            .position(|&c| c > 0)
            // seaice-lint: allow(panic-in-library) reason="the entry assert (total > 0) guarantees the histogram has at least one occupied bin"
            .expect("nonempty histogram") as u8;
    }
    best_t
}

/// Convenience: Otsu threshold selection followed by binary thresholding,
/// like `cv::threshold(..., THRESH_BINARY | THRESH_OTSU)`.
pub fn otsu_binary(src: &Image<u8>, max_value: u8) -> (u8, Image<u8>) {
    let t = otsu_threshold(src);
    (t, threshold(src, t, max_value, ThresholdType::Binary))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(vals: &[u8]) -> Image<u8> {
        Image::from_vec(vals.len(), 1, 1, vals.to_vec())
    }

    #[test]
    fn binary_threshold() {
        let out = threshold(&img(&[0, 100, 101, 255]), 100, 255, ThresholdType::Binary);
        assert_eq!(out.as_slice(), &[0, 0, 255, 255]);
    }

    #[test]
    fn binary_inv_threshold() {
        let out = threshold(
            &img(&[0, 100, 101, 255]),
            100,
            200,
            ThresholdType::BinaryInv,
        );
        assert_eq!(out.as_slice(), &[200, 200, 0, 0]);
    }

    #[test]
    fn trunc_threshold_caps_values() {
        let out = threshold(&img(&[0, 99, 150, 255]), 100, 255, ThresholdType::Trunc);
        assert_eq!(out.as_slice(), &[0, 99, 100, 100]);
    }

    #[test]
    fn tozero_thresholds() {
        let out = threshold(&img(&[0, 99, 150, 255]), 100, 255, ThresholdType::ToZero);
        assert_eq!(out.as_slice(), &[0, 0, 150, 255]);
        let out = threshold(&img(&[0, 99, 150, 255]), 100, 255, ThresholdType::ToZeroInv);
        assert_eq!(out.as_slice(), &[0, 99, 0, 0]);
    }

    #[test]
    fn otsu_separates_bimodal_histogram() {
        // Two well-separated clusters around 40 and 200.
        let mut vals = vec![];
        vals.extend(std::iter::repeat_n(38u8, 50));
        vals.extend(std::iter::repeat_n(42u8, 50));
        vals.extend(std::iter::repeat_n(198u8, 50));
        vals.extend(std::iter::repeat_n(202u8, 50));
        let t = otsu_threshold(&img(&vals));
        assert!(
            (42..198).contains(&t),
            "otsu threshold {t} should split the two modes"
        );
    }

    #[test]
    fn otsu_constant_image() {
        let t = otsu_threshold(&img(&[77; 10]));
        assert_eq!(t, 77);
    }

    #[test]
    fn otsu_binary_splits_classes() {
        let vals: Vec<u8> = (0..100).map(|i| if i < 60 { 20 } else { 230 }).collect();
        let (t, out) = otsu_binary(&img(&vals), 255);
        assert!((20..230).contains(&t));
        assert_eq!(out.as_slice().iter().filter(|&&v| v == 255).count(), 40);
    }
}
