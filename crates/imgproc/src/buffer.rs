//! Interleaved row-major image container, the substrate's equivalent of an
//! OpenCV `Mat`.

use serde::{Deserialize, Serialize};

/// An 8-bit RGB pixel `[r, g, b]`.
pub type Rgb8 = [u8; 3];

/// A single-channel 8-bit image.
pub type Gray8 = Image<u8>;

/// A single-channel (or multi-channel) `f32` image.
pub type GrayF32 = Image<f32>;

/// A dense, interleaved, row-major image.
///
/// `channels` is a runtime property (1 for masks/grayscale, 3 for RGB/HSV),
/// which keeps the kernel implementations monomorphic over the sample type
/// `T` only. Pixel `(x, y)` channel `c` lives at index
/// `(y * width + x) * channels + c`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Image<T> {
    width: usize,
    height: usize,
    channels: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Image<T> {
    /// Creates a zero/default-initialized image.
    ///
    /// # Panics
    /// Panics if `channels == 0` or if the total sample count overflows.
    pub fn new(width: usize, height: usize, channels: usize) -> Self {
        assert!(channels > 0, "image must have at least one channel");
        let len = width
            .checked_mul(height)
            .and_then(|p| p.checked_mul(channels))
            // seaice-lint: allow(panic-in-library) reason="documented panicking constructor (# Panics above); an overflowing allocation request has no sane recovery and the checked_mul makes it loud instead of UB-adjacent"
            .expect("image dimensions overflow");
        Self {
            width,
            height,
            channels,
            data: vec![T::default(); len],
        }
    }

    /// Wraps an existing sample vector.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height * channels`.
    pub fn from_vec(width: usize, height: usize, channels: usize, data: Vec<T>) -> Self {
        assert!(channels > 0, "image must have at least one channel");
        assert_eq!(
            data.len(),
            width * height * channels,
            "sample vector length does not match dimensions"
        );
        Self {
            width,
            height,
            channels,
            data,
        }
    }

    /// Builds an image by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(
        width: usize,
        height: usize,
        channels: usize,
        mut f: impl FnMut(usize, usize) -> Vec<T>,
    ) -> Self {
        let mut img = Self::new(width, height, channels);
        for y in 0..height {
            for x in 0..width {
                let px = f(x, y);
                debug_assert_eq!(px.len(), channels);
                img.put_pixel(x, y, &px);
            }
        }
        img
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of interleaved channels.
    #[inline]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// `(width, height)`.
    #[inline]
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Total pixel count (`width * height`).
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Flat sample slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat sample slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the image, returning the sample vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Samples of one pixel.
    ///
    /// # Panics
    /// Panics (in debug, via indexing in release) when out of bounds.
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> &[T] {
        debug_assert!(x < self.width && y < self.height);
        let i = (y * self.width + x) * self.channels;
        &self.data[i..i + self.channels]
    }

    /// Mutable samples of one pixel.
    #[inline]
    pub fn pixel_mut(&mut self, x: usize, y: usize) -> &mut [T] {
        debug_assert!(x < self.width && y < self.height);
        let i = (y * self.width + x) * self.channels;
        &mut self.data[i..i + self.channels]
    }

    /// Writes all channels of one pixel.
    #[inline]
    pub fn put_pixel(&mut self, x: usize, y: usize, px: &[T]) {
        self.pixel_mut(x, y).copy_from_slice(px);
    }

    /// Single-channel convenience read (channel 0).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        self.pixel(x, y)[0]
    }

    /// Single-channel convenience write (channel 0).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        self.pixel_mut(x, y)[0] = v;
    }

    /// One image row as a sample slice (`width * channels` long).
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        let stride = self.width * self.channels;
        &self.data[y * stride..(y + 1) * stride]
    }

    /// Mutable image row.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        let stride = self.width * self.channels;
        &mut self.data[y * stride..(y + 1) * stride]
    }

    /// Iterator over `(x, y, pixel)` in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = (usize, usize, &[T])> {
        let (w, c) = (self.width, self.channels);
        self.data
            .chunks_exact(c)
            .enumerate()
            .map(move |(i, px)| (i % w, i / w, px))
    }

    /// Sets every pixel to `px`.
    ///
    /// # Panics
    /// Panics if `px.len() != channels`.
    pub fn fill(&mut self, px: &[T]) {
        assert_eq!(px.len(), self.channels);
        for chunk in self.data.chunks_exact_mut(self.channels) {
            chunk.copy_from_slice(px);
        }
    }

    /// Copies a rectangular region into a new image.
    ///
    /// # Panics
    /// Panics if the region exceeds the image bounds.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Self {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop out of bounds"
        );
        let mut out = Self::new(w, h, self.channels);
        for y in 0..h {
            let src = &self.row(y0 + y)[x0 * self.channels..(x0 + w) * self.channels];
            out.row_mut(y).copy_from_slice(src);
        }
        out
    }

    /// Pastes `src` into this image with its top-left corner at `(x0, y0)`.
    ///
    /// # Panics
    /// Panics on channel mismatch or if `src` exceeds the bounds.
    pub fn paste(&mut self, src: &Self, x0: usize, y0: usize) {
        assert_eq!(self.channels, src.channels, "channel mismatch");
        assert!(
            x0 + src.width <= self.width && y0 + src.height <= self.height,
            "paste out of bounds"
        );
        let c = self.channels;
        for y in 0..src.height {
            let dst_row = self.row_mut(y0 + y);
            dst_row[x0 * c..(x0 + src.width) * c].copy_from_slice(src.row(y));
        }
    }

    /// Extracts one channel as a single-channel image.
    ///
    /// # Panics
    /// Panics if `c >= channels`.
    pub fn extract_channel(&self, c: usize) -> Image<T> {
        assert!(c < self.channels);
        let mut out = Image::new(self.width, self.height, 1);
        for (dst, px) in out
            .data
            .iter_mut()
            .zip(self.data.chunks_exact(self.channels))
        {
            *dst = px[c];
        }
        out
    }

    /// Applies `f` to every sample, returning a new image of the same shape.
    pub fn map<U>(&self, f: impl Fn(T) -> U + Sync) -> Image<U>
    where
        T: Sync,
        U: Copy + Default + Send,
    {
        Image {
            width: self.width,
            height: self.height,
            channels: self.channels,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl Image<u8> {
    /// Fraction of non-zero samples — handy for mask coverage statistics.
    pub fn nonzero_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let nz = self.data.iter().filter(|&&v| v != 0).count();
        nz as f64 / self.data.len() as f64
    }

    /// Converts to `f32` samples scaled to `[0, 1]`.
    pub fn to_f32(&self) -> Image<f32> {
        self.map(|v| v as f32 / 255.0)
    }
}

impl Image<f32> {
    /// Converts `[0, 1]` float samples back to `u8`, clamping out-of-range
    /// values.
    pub fn to_u8(&self) -> Image<u8> {
        self.map(|v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.data.iter().map(|&v| v as f64).sum();
        (sum / self.data.len() as f64) as f32
    }
}

/// Ceiling on pooled buffers per sample type; recycling beyond this drops
/// the buffer instead of growing the pool without bound.
const MAX_POOLED: usize = 16;

/// A reusable pool of tile-sized buffers.
///
/// Batch labeling touches thousands of equally sized tiles; allocating
/// (and faulting in) fresh image buffers for every tile dominates the cost
/// of the fused segmentation kernel. A `Scratch` keeps returned buffers
/// alive so the next `take` reuses their capacity instead of hitting the
/// allocator.
///
/// ## Contract
///
/// * `take*` returns a zero-filled buffer of exactly the requested length,
///   reusing a pooled allocation when one with sufficient capacity exists.
/// * `recycle*` donates a buffer back to the pool; the pool keeps at most
///   [`MAX_POOLED`] buffers per sample type and silently drops the rest.
/// * A `Scratch` is single-threaded by design; parallel batch drivers give
///   each worker its own (e.g. via `map_init` or a thread-local).
#[derive(Debug, Default)]
pub struct Scratch {
    u8_bufs: Vec<Vec<u8>>,
    f32_bufs: Vec<Vec<f32>>,
}

fn pool_take<T: Copy + Default>(pool: &mut Vec<Vec<T>>, len: usize) -> Vec<T> {
    let mut buf = match pool.iter().position(|b| b.capacity() >= len) {
        Some(i) => pool.swap_remove(i),
        None => Vec::with_capacity(len),
    };
    buf.clear();
    buf.resize(len, T::default());
    buf
}

fn pool_recycle<T>(pool: &mut Vec<Vec<T>>, buf: Vec<T>) {
    if buf.capacity() > 0 && pool.len() < MAX_POOLED {
        pool.push(buf);
    }
}

impl Scratch {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zero-filled `u8` buffer of length `len`.
    pub fn take(&mut self, len: usize) -> Vec<u8> {
        pool_take(&mut self.u8_bufs, len)
    }

    /// A zero-filled `f32` buffer of length `len`.
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        pool_take(&mut self.f32_bufs, len)
    }

    /// A zeroed `u8` image backed by a pooled buffer.
    pub fn take_image(&mut self, width: usize, height: usize, channels: usize) -> Image<u8> {
        Image::from_vec(
            width,
            height,
            channels,
            self.take(width * height * channels),
        )
    }

    /// A zeroed `f32` image backed by a pooled buffer.
    pub fn take_image_f32(&mut self, width: usize, height: usize, channels: usize) -> Image<f32> {
        Image::from_vec(
            width,
            height,
            channels,
            self.take_f32(width * height * channels),
        )
    }

    /// Donates a `u8` buffer back to the pool.
    pub fn recycle(&mut self, buf: Vec<u8>) {
        pool_recycle(&mut self.u8_bufs, buf);
    }

    /// Donates an `f32` buffer back to the pool.
    pub fn recycle_f32(&mut self, buf: Vec<f32>) {
        pool_recycle(&mut self.f32_bufs, buf);
    }

    /// Donates a `u8` image's backing buffer back to the pool.
    pub fn recycle_image(&mut self, img: Image<u8>) {
        self.recycle(img.into_vec());
    }

    /// Donates an `f32` image's backing buffer back to the pool.
    pub fn recycle_image_f32(&mut self, img: Image<f32>) {
        self.recycle_f32(img.into_vec());
    }

    /// `(u8 buffers, f32 buffers)` currently pooled.
    pub fn pooled(&self) -> (usize, usize) {
        (self.u8_bufs.len(), self.f32_bufs.len())
    }
}

/// Zips two same-shape images through `f`, producing a third.
///
/// # Panics
/// Panics if shapes differ.
pub fn zip_map<A, B, O>(a: &Image<A>, b: &Image<B>, f: impl Fn(A, B) -> O) -> Image<O>
where
    A: Copy + Default,
    B: Copy + Default,
    O: Copy + Default,
{
    assert_eq!(a.dimensions(), b.dimensions(), "image size mismatch");
    assert_eq!(a.channels(), b.channels(), "image channel mismatch");
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Image::from_vec(a.width(), a.height(), a.channels(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let img = Image::<u8>::new(4, 3, 2);
        assert_eq!(img.dimensions(), (4, 3));
        assert_eq!(img.channels(), 2);
        assert!(img.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn pixel_roundtrip() {
        let mut img = Image::<u8>::new(5, 5, 3);
        img.put_pixel(2, 3, &[9, 8, 7]);
        assert_eq!(img.pixel(2, 3), &[9, 8, 7]);
        assert_eq!(img.pixel(0, 0), &[0, 0, 0]);
    }

    #[test]
    fn row_layout_is_interleaved() {
        let mut img = Image::<u8>::new(2, 2, 3);
        img.put_pixel(0, 1, &[1, 2, 3]);
        img.put_pixel(1, 1, &[4, 5, 6]);
        assert_eq!(img.row(1), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn crop_then_paste_roundtrip() {
        let mut img = Image::<u8>::new(8, 8, 1);
        for y in 0..8 {
            for x in 0..8 {
                img.set(x, y, (y * 8 + x) as u8);
            }
        }
        let patch = img.crop(2, 3, 4, 2);
        assert_eq!(patch.dimensions(), (4, 2));
        assert_eq!(patch.get(0, 0), img.get(2, 3));
        let mut out = Image::<u8>::new(8, 8, 1);
        out.paste(&patch, 2, 3);
        assert_eq!(out.get(5, 4), img.get(5, 4));
        assert_eq!(out.get(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "crop out of bounds")]
    fn crop_out_of_bounds_panics() {
        let img = Image::<u8>::new(4, 4, 1);
        let _ = img.crop(2, 2, 4, 4);
    }

    #[test]
    fn extract_channel_picks_interleaved_samples() {
        let img = Image::from_vec(2, 1, 3, vec![1u8, 2, 3, 4, 5, 6]);
        assert_eq!(img.extract_channel(1).as_slice(), &[2, 5]);
    }

    #[test]
    fn from_fn_matches_manual_fill() {
        let img = Image::from_fn(3, 2, 1, |x, y| vec![(x + 10 * y) as u8]);
        assert_eq!(img.get(2, 1), 12);
    }

    #[test]
    fn u8_f32_roundtrip() {
        let img = Image::from_vec(2, 1, 1, vec![0u8, 255]);
        let f = img.to_f32();
        assert!((f.get(0, 0) - 0.0).abs() < 1e-6);
        assert!((f.get(1, 0) - 1.0).abs() < 1e-6);
        assert_eq!(f.to_u8().as_slice(), img.as_slice());
    }

    #[test]
    fn nonzero_fraction_counts_samples() {
        let img = Image::from_vec(4, 1, 1, vec![0u8, 1, 2, 0]);
        assert!((img.nonzero_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zip_map_adds() {
        let a = Image::from_vec(2, 1, 1, vec![1u8, 2]);
        let b = Image::from_vec(2, 1, 1, vec![10u8, 20]);
        let c = zip_map(&a, &b, |x, y| x + y);
        assert_eq!(c.as_slice(), &[11, 22]);
    }

    #[test]
    fn scratch_reuses_recycled_capacity() {
        let mut s = Scratch::new();
        let mut buf = s.take(256);
        buf[0] = 7;
        let ptr = buf.as_ptr();
        s.recycle(buf);
        assert_eq!(s.pooled(), (1, 0));
        // A smaller request reuses the pooled allocation and is re-zeroed.
        let again = s.take(64);
        assert_eq!(again.as_ptr(), ptr);
        assert_eq!(again.len(), 64);
        assert!(again.iter().all(|&v| v == 0));
        assert_eq!(s.pooled(), (0, 0));
    }

    #[test]
    fn scratch_allocates_when_nothing_fits() {
        let mut s = Scratch::new();
        s.recycle(vec![0u8; 16]);
        let big = s.take(1024);
        assert_eq!(big.len(), 1024);
        // The too-small buffer stays pooled for future fits.
        assert_eq!(s.pooled(), (1, 0));
    }

    #[test]
    fn scratch_images_roundtrip() {
        let mut s = Scratch::new();
        let img = s.take_image(4, 3, 3);
        assert_eq!(img.dimensions(), (4, 3));
        assert!(img.as_slice().iter().all(|&v| v == 0));
        s.recycle_image(img);
        let f = s.take_image_f32(4, 3, 1);
        assert_eq!(f.as_slice().len(), 12);
        s.recycle_image_f32(f);
        assert_eq!(s.pooled(), (1, 1));
    }

    #[test]
    fn scratch_pool_is_bounded() {
        let mut s = Scratch::new();
        for _ in 0..40 {
            s.recycle(vec![0u8; 8]);
        }
        assert_eq!(s.pooled().0, 16);
    }
}
