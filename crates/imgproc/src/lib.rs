//! # seaice-imgproc
//!
//! A from-scratch image-processing substrate standing in for the OpenCV
//! routines the paper's workflow uses: RGB↔HSV conversion, noise filtering,
//! bitwise operations, absolute difference, Otsu / truncated / binary
//! thresholding, and min-max normalization — plus supporting morphology,
//! histogram, and resize kernels, and PPM/PGM I/O for inspecting results.
//!
//! All pixel kernels operate on the [`buffer::Image`] container and are
//! rayon-parallelized over rows where the image is large enough for the
//! parallelism to pay for itself.
//!
//! ## Conventions
//!
//! * 8-bit images use the OpenCV HSV convention: `H ∈ [0, 180)`,
//!   `S, V ∈ [0, 255]`.
//! * Multi-channel data is interleaved row-major (`y`, then `x`, then
//!   channel), like OpenCV's `Mat`.
//!
//! ```
//! use seaice_imgproc::prelude::*;
//!
//! let mut img = Image::<u8>::new(16, 16, 3);
//! img.fill(&[200, 210, 220]);
//! let hsv = rgb_to_hsv(&img);
//! assert_eq!(hsv.channels(), 3);
//! ```
#![forbid(unsafe_code)]

pub mod buffer;
pub mod color;
pub mod components;
pub mod filter;
pub mod histogram;
pub mod io;
pub mod morphology;
pub mod ops;
pub mod resize;
pub mod threshold;

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::buffer::{Gray8, GrayF32, Image, Rgb8, Scratch};
    pub use crate::color::{hsv_to_rgb, rgb_pixel_to_hsv_int, rgb_to_gray, rgb_to_hsv};
    pub use crate::filter::{box_blur, gaussian_blur, median_filter};
    pub use crate::morphology::{close, dilate, erode, open};
    pub use crate::ops::{
        absdiff, bitwise_and, bitwise_not, bitwise_or, in_range, min_max_normalize,
    };
    pub use crate::threshold::{otsu_threshold, threshold, ThresholdType};
}

/// Minimum pixel count before kernels switch from sequential to
/// rayon-parallel row iteration. Below this, thread coordination costs more
/// than it saves.
pub(crate) const PAR_THRESHOLD: usize = 64 * 64;
