//! Element-wise image operations: bitwise logic, absolute difference,
//! saturating arithmetic, range masks, and min-max normalization — the
//! OpenCV `bitwise_*`, `absdiff`, `inRange`, and `normalize(NORM_MINMAX)`
//! equivalents used by the cloud/shadow filter and the color segmenter.

use crate::buffer::{zip_map, Image};

/// Per-sample bitwise AND of two same-shape 8-bit images.
pub fn bitwise_and(a: &Image<u8>, b: &Image<u8>) -> Image<u8> {
    zip_map(a, b, |x, y| x & y)
}

/// Per-sample bitwise OR of two same-shape 8-bit images.
pub fn bitwise_or(a: &Image<u8>, b: &Image<u8>) -> Image<u8> {
    zip_map(a, b, |x, y| x | y)
}

/// Per-sample bitwise XOR of two same-shape 8-bit images.
pub fn bitwise_xor(a: &Image<u8>, b: &Image<u8>) -> Image<u8> {
    zip_map(a, b, |x, y| x ^ y)
}

/// Per-sample bitwise NOT.
pub fn bitwise_not(a: &Image<u8>) -> Image<u8> {
    a.map(|v| !v)
}

/// Bitwise AND of `src` with a single-channel mask broadcast across
/// channels, like `cv::bitwise_and(src, src, mask=mask)`: samples where the
/// mask is zero become zero.
///
/// # Panics
/// Panics if shapes differ or `mask` is not single-channel.
pub fn apply_mask(src: &Image<u8>, mask: &Image<u8>) -> Image<u8> {
    assert_eq!(mask.channels(), 1, "mask must be single-channel");
    assert_eq!(src.dimensions(), mask.dimensions(), "image size mismatch");
    let c = src.channels();
    let mut out = src.clone();
    for (px, &m) in out.as_mut_slice().chunks_exact_mut(c).zip(mask.as_slice()) {
        if m == 0 {
            px.fill(0);
        }
    }
    out
}

/// Per-sample absolute difference, `|a - b|`, like `cv::absdiff`.
pub fn absdiff(a: &Image<u8>, b: &Image<u8>) -> Image<u8> {
    zip_map(a, b, |x, y| x.abs_diff(y))
}

/// Per-sample saturating addition.
pub fn add_saturating(a: &Image<u8>, b: &Image<u8>) -> Image<u8> {
    zip_map(a, b, |x, y| x.saturating_add(y))
}

/// Per-sample saturating subtraction (`a - b`).
pub fn sub_saturating(a: &Image<u8>, b: &Image<u8>) -> Image<u8> {
    zip_map(a, b, |x, y| x.saturating_sub(y))
}

/// Adds a signed scalar to every sample with saturation — used to lift or
/// darken brightness uniformly.
pub fn add_scalar(src: &Image<u8>, delta: i16) -> Image<u8> {
    src.map(|v| (v as i16 + delta).clamp(0, 255) as u8)
}

/// Builds a binary mask (255 where inside, 0 outside) of pixels whose every
/// channel lies within `[lo, hi]` inclusive — `cv::inRange`.
///
/// # Panics
/// Panics if `lo`/`hi` length differs from the channel count.
pub fn in_range(src: &Image<u8>, lo: &[u8], hi: &[u8]) -> Image<u8> {
    let c = src.channels();
    assert_eq!(lo.len(), c, "lower bound arity mismatch");
    assert_eq!(hi.len(), c, "upper bound arity mismatch");
    let mut out = Image::<u8>::new(src.width(), src.height(), 1);
    for (dst, px) in out
        .as_mut_slice()
        .iter_mut()
        .zip(src.as_slice().chunks_exact(c))
    {
        let inside = px
            .iter()
            .zip(lo.iter().zip(hi))
            .all(|(&v, (&l, &h))| v >= l && v <= h);
        *dst = if inside { 255 } else { 0 };
    }
    out
}

/// Min-max normalization of a single-channel 8-bit image onto
/// `[out_lo, out_hi]`, like `cv::normalize(..., NORM_MINMAX)`.
///
/// A constant image maps entirely to `out_lo`.
///
/// # Panics
/// Panics if `src` is not single-channel, is empty, or `out_lo > out_hi`.
pub fn min_max_normalize(src: &Image<u8>, out_lo: u8, out_hi: u8) -> Image<u8> {
    assert_eq!(
        src.channels(),
        1,
        "normalize expects a single-channel image"
    );
    assert!(!src.as_slice().is_empty(), "normalize of an empty image");
    assert!(out_lo <= out_hi, "inverted output range");
    // seaice-lint: allow(panic-in-library) reason="the assert three lines up rejects empty images, so min() is always Some"
    let mn = *src.as_slice().iter().min().expect("nonempty") as f32;
    // seaice-lint: allow(panic-in-library) reason="the assert four lines up rejects empty images, so max() is always Some"
    let mx = *src.as_slice().iter().max().expect("nonempty") as f32;
    if mx <= mn {
        let mut out = src.clone();
        out.as_mut_slice().fill(out_lo);
        return out;
    }
    let scale = (out_hi - out_lo) as f32 / (mx - mn);
    src.map(|v| (out_lo as f32 + (v as f32 - mn) * scale).round() as u8)
}

/// Min-max normalization of an `f32` image onto `[out_lo, out_hi]`.
pub fn min_max_normalize_f32(src: &Image<f32>, out_lo: f32, out_hi: f32) -> Image<f32> {
    assert!(!src.as_slice().is_empty(), "normalize of an empty image");
    let mn = src.as_slice().iter().copied().fold(f32::INFINITY, f32::min);
    let mx = src
        .as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    if mx <= mn {
        let mut out = src.clone();
        out.as_mut_slice().fill(out_lo);
        return out;
    }
    let scale = (out_hi - out_lo) / (mx - mn);
    src.map(|v| out_lo + (v - mn) * scale)
}

/// Blends two same-shape images: `alpha * a + (1 - alpha) * b`, like
/// `cv::addWeighted` with complementary weights.
pub fn blend(a: &Image<u8>, b: &Image<u8>, alpha: f32) -> Image<u8> {
    zip_map(a, b, |x, y| {
        (alpha * x as f32 + (1.0 - alpha) * y as f32)
            .round()
            .clamp(0.0, 255.0) as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(vals: &[u8]) -> Image<u8> {
        Image::from_vec(vals.len(), 1, 1, vals.to_vec())
    }

    #[test]
    fn bitwise_ops() {
        let a = img(&[0b1100, 0xFF]);
        let b = img(&[0b1010, 0x0F]);
        assert_eq!(bitwise_and(&a, &b).as_slice(), &[0b1000, 0x0F]);
        assert_eq!(bitwise_or(&a, &b).as_slice(), &[0b1110, 0xFF]);
        assert_eq!(bitwise_xor(&a, &b).as_slice(), &[0b0110, 0xF0]);
        assert_eq!(bitwise_not(&a).as_slice(), &[!0b1100u8, 0x00]);
    }

    #[test]
    fn absdiff_is_symmetric() {
        let a = img(&[10, 200]);
        let b = img(&[50, 100]);
        assert_eq!(absdiff(&a, &b).as_slice(), &[40, 100]);
        assert_eq!(absdiff(&b, &a).as_slice(), &[40, 100]);
    }

    #[test]
    fn saturating_arith() {
        let a = img(&[250, 5]);
        let b = img(&[10, 10]);
        assert_eq!(add_saturating(&a, &b).as_slice(), &[255, 15]);
        assert_eq!(sub_saturating(&a, &b).as_slice(), &[240, 0]);
        assert_eq!(add_scalar(&a, 10).as_slice(), &[255, 15]);
        assert_eq!(add_scalar(&a, -10).as_slice(), &[240, 0]);
    }

    #[test]
    fn in_range_all_channels_must_match() {
        let mut src = Image::<u8>::new(2, 1, 3);
        src.put_pixel(0, 0, &[0, 0, 210]); // inside thick-ice range
        src.put_pixel(1, 0, &[0, 0, 100]); // V too low
        let mask = in_range(&src, &[0, 0, 205], &[185, 255, 255]);
        assert_eq!(mask.as_slice(), &[255, 0]);
    }

    #[test]
    fn apply_mask_zeroes_outside() {
        let mut src = Image::<u8>::new(2, 1, 3);
        src.put_pixel(0, 0, &[1, 2, 3]);
        src.put_pixel(1, 0, &[4, 5, 6]);
        let mask = img(&[255, 0]);
        let out = apply_mask(&src, &mask);
        assert_eq!(out.pixel(0, 0), &[1, 2, 3]);
        assert_eq!(out.pixel(1, 0), &[0, 0, 0]);
    }

    #[test]
    fn minmax_normalize_hits_bounds() {
        let out = min_max_normalize(&img(&[50, 100, 150]), 0, 255);
        assert_eq!(out.as_slice(), &[0, 128, 255]);
    }

    #[test]
    fn minmax_normalize_constant_maps_to_lo() {
        let out = min_max_normalize(&img(&[9, 9, 9]), 10, 200);
        assert_eq!(out.as_slice(), &[10, 10, 10]);
    }

    #[test]
    fn minmax_normalize_f32_range() {
        let src = Image::from_vec(3, 1, 1, vec![-1.0f32, 0.0, 3.0]);
        let out = min_max_normalize_f32(&src, 0.0, 1.0);
        assert!((out.get(0, 0) - 0.0).abs() < 1e-6);
        assert!((out.get(2, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn blend_interpolates() {
        let a = img(&[200]);
        let b = img(&[100]);
        assert_eq!(blend(&a, &b, 1.0).as_slice(), &[200]);
        assert_eq!(blend(&a, &b, 0.0).as_slice(), &[100]);
        assert_eq!(blend(&a, &b, 0.5).as_slice(), &[150]);
    }
}
