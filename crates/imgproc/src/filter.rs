//! Spatial noise filters: separable Gaussian blur, box blur, and median
//! filtering — the "noise filtering" stage of the paper's thin-cloud and
//! shadow removal pipeline.
//!
//! Borders are handled by clamping coordinates (OpenCV's
//! `BORDER_REPLICATE`). The Gaussian and box filters are separable and
//! parallelized over rows with rayon.

use crate::buffer::Image;
use crate::PAR_THRESHOLD;
use rayon::prelude::*;

/// Builds a normalized 1-D Gaussian kernel of half-width `radius`.
///
/// `sigma <= 0` picks OpenCV's automatic sigma:
/// `0.3 * ((ksize - 1) * 0.5 - 1) + 0.8`.
pub fn gaussian_kernel(radius: usize, sigma: f32) -> Vec<f32> {
    let ksize = 2 * radius + 1;
    let sigma = if sigma > 0.0 {
        sigma
    } else {
        0.3 * ((ksize as f32 - 1.0) * 0.5 - 1.0) + 0.8
    };
    let denom = 2.0 * sigma * sigma;
    let mut k: Vec<f32> = (0..ksize)
        .map(|i| {
            let d = i as f32 - radius as f32;
            (-d * d / denom).exp()
        })
        .collect();
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Horizontal then vertical pass of a separable 1-D kernel over every
/// channel of an 8-bit image, with replicated borders.
fn separable_convolve(src: &Image<u8>, kernel: &[f32]) -> Image<u8> {
    let (w, h) = src.dimensions();
    let c = src.channels();
    let radius = kernel.len() / 2;
    if w == 0 || h == 0 {
        return src.clone();
    }

    // Horizontal pass into f32 to avoid double rounding.
    let mut tmp = vec![0f32; w * h * c];
    let run_h = |y: usize, dst_row: &mut [f32]| {
        let row = src.row(y);
        for x in 0..w {
            for ch in 0..c {
                let mut acc = 0f32;
                for (i, &kv) in kernel.iter().enumerate() {
                    let sx = (x + i).saturating_sub(radius).min(w - 1);
                    acc += kv * row[sx * c + ch] as f32;
                }
                dst_row[x * c + ch] = acc;
            }
        }
    };
    if w * h >= PAR_THRESHOLD {
        tmp.par_chunks_exact_mut(w * c)
            .enumerate()
            .for_each(|(y, row)| run_h(y, row));
    } else {
        for (y, row) in tmp.chunks_exact_mut(w * c).enumerate() {
            run_h(y, row);
        }
    }

    // Vertical pass back to u8.
    let mut out = Image::<u8>::new(w, h, c);
    let run_v = |y: usize, dst_row: &mut [u8]| {
        for x in 0..w {
            for ch in 0..c {
                let mut acc = 0f32;
                for (i, &kv) in kernel.iter().enumerate() {
                    let sy = (y + i).saturating_sub(radius).min(h - 1);
                    acc += kv * tmp[(sy * w + x) * c + ch];
                }
                dst_row[x * c + ch] = acc.round().clamp(0.0, 255.0) as u8;
            }
        }
    };
    if w * h >= PAR_THRESHOLD {
        out.as_mut_slice()
            .par_chunks_exact_mut(w * c)
            .enumerate()
            .for_each(|(y, row)| run_v(y, row));
    } else {
        let stride = w * c;
        for y in 0..h {
            // Split borrow: rebuild the row slice each iteration.
            let row_start = y * stride;
            let dst = &mut out.as_mut_slice()[row_start..row_start + stride];
            run_v(y, dst);
        }
    }
    out
}

/// Gaussian blur with kernel half-width `radius` and standard deviation
/// `sigma` (`sigma <= 0` selects it automatically from the kernel size).
pub fn gaussian_blur(src: &Image<u8>, radius: usize, sigma: f32) -> Image<u8> {
    if radius == 0 {
        return src.clone();
    }
    separable_convolve(src, &gaussian_kernel(radius, sigma))
}

/// Box (mean) blur with kernel half-width `radius`.
pub fn box_blur(src: &Image<u8>, radius: usize) -> Image<u8> {
    if radius == 0 {
        return src.clone();
    }
    let ksize = 2 * radius + 1;
    let kernel = vec![1.0 / ksize as f32; ksize];
    separable_convolve(src, &kernel)
}

/// Median filter over a `(2 * radius + 1)²` neighbourhood, per channel,
/// with replicated borders — OpenCV's `medianBlur`.
pub fn median_filter(src: &Image<u8>, radius: usize) -> Image<u8> {
    if radius == 0 {
        return src.clone();
    }
    let (w, h) = src.dimensions();
    let c = src.channels();
    if w == 0 || h == 0 {
        return src.clone();
    }
    let mut out = Image::<u8>::new(w, h, c);
    let run_row = |y: usize, dst_row: &mut [u8]| {
        // One histogram-free window buffer reused per row (small kernels).
        let mut window = Vec::with_capacity((2 * radius + 1) * (2 * radius + 1));
        for x in 0..w {
            for ch in 0..c {
                window.clear();
                for dy in 0..=2 * radius {
                    let sy = (y + dy).saturating_sub(radius).min(h - 1);
                    for dx in 0..=2 * radius {
                        let sx = (x + dx).saturating_sub(radius).min(w - 1);
                        window.push(src.pixel(sx, sy)[ch]);
                    }
                }
                let mid = window.len() / 2;
                let (_, med, _) = window.select_nth_unstable(mid);
                dst_row[x * c + ch] = *med;
            }
        }
    };
    if w * h >= PAR_THRESHOLD {
        out.as_mut_slice()
            .par_chunks_exact_mut(w * c)
            .enumerate()
            .for_each(|(y, row)| run_row(y, row));
    } else {
        let stride = w * c;
        for y in 0..h {
            let row_start = y * stride;
            let dst = &mut out.as_mut_slice()[row_start..row_start + stride];
            run_row(y, dst);
        }
    }
    out
}

/// Box (mean) blur over an `f32` plane with replicated borders, using a
/// sliding-window running sum so the cost is O(pixels) regardless of
/// radius. Large radii are common when smoothing estimated illumination /
/// haze fields.
///
/// # Panics
/// Panics if `src` is not single-channel.
pub fn box_blur_f32(src: &Image<f32>, radius: usize) -> Image<f32> {
    assert_eq!(
        src.channels(),
        1,
        "box_blur_f32 expects a single-channel image"
    );
    if radius == 0 {
        return src.clone();
    }
    let (w, h) = src.dimensions();
    if w == 0 || h == 0 {
        return src.clone();
    }
    let win = 2 * radius + 1;

    // Horizontal pass with a running sum over clamped coordinates.
    let mut tmp = vec![0f32; w * h];
    let run_h = |y: usize, dst: &mut [f32]| {
        let row = src.row(y);
        let at = |x: isize| row[x.clamp(0, w as isize - 1) as usize];
        let mut sum: f64 = 0.0;
        for i in -(radius as isize)..=(radius as isize) {
            sum += at(i) as f64;
        }
        for (x, d) in dst.iter_mut().enumerate() {
            *d = (sum / win as f64) as f32;
            sum += at(x as isize + radius as isize + 1) as f64;
            sum -= at(x as isize - radius as isize) as f64;
        }
    };
    if w * h >= PAR_THRESHOLD {
        tmp.par_chunks_exact_mut(w)
            .enumerate()
            .for_each(|(y, row)| run_h(y, row));
    } else {
        for (y, row) in tmp.chunks_exact_mut(w).enumerate() {
            run_h(y, row);
        }
    }

    // Vertical pass (column-wise running sums, parallel over columns by
    // transposing the work onto row chunks of the output).
    let mut out = Image::<f32>::new(w, h, 1);
    let tmp_ref = &tmp;
    let col_sum = |x: usize, y: isize| tmp_ref[(y.clamp(0, h as isize - 1) as usize) * w + x];
    // Running sums per column require sequential traversal in y; process
    // columns independently.
    let mut columns: Vec<Vec<f32>> = Vec::with_capacity(w);
    columns.resize_with(w, || vec![0f32; h]);
    columns.par_iter_mut().enumerate().for_each(|(x, col)| {
        let mut sum: f64 = 0.0;
        for i in -(radius as isize)..=(radius as isize) {
            sum += col_sum(x, i) as f64;
        }
        for (y, c) in col.iter_mut().enumerate() {
            *c = (sum / win as f64) as f32;
            sum += col_sum(x, y as isize + radius as isize + 1) as f64;
            sum -= col_sum(x, y as isize - radius as isize) as f64;
        }
    });
    for y in 0..h {
        let row = out.row_mut(y);
        for (r, col) in row.iter_mut().zip(&columns) {
            *r = col[y];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_kernel_is_normalized_and_symmetric() {
        let k = gaussian_kernel(3, 1.2);
        assert_eq!(k.len(), 7);
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        for i in 0..3 {
            assert!((k[i] - k[6 - i]).abs() < 1e-6);
        }
        assert!(k[3] >= k[2] && k[2] >= k[1] && k[1] >= k[0]);
    }

    #[test]
    fn blur_preserves_constant_image() {
        let mut img = Image::<u8>::new(9, 9, 3);
        img.fill(&[120, 130, 140]);
        for out in [gaussian_blur(&img, 2, 1.0), box_blur(&img, 2)] {
            assert_eq!(out.pixel(4, 4), &[120, 130, 140]);
            assert_eq!(out.pixel(0, 0), &[120, 130, 140]); // border replicate
        }
    }

    #[test]
    fn gaussian_blur_smooths_impulse() {
        let mut img = Image::<u8>::new(9, 9, 1);
        img.set(4, 4, 255);
        let out = gaussian_blur(&img, 2, 1.0);
        let center = out.get(4, 4);
        assert!(center < 255, "impulse energy must spread");
        assert!(out.get(3, 4) > 0, "neighbours must receive energy");
        assert!(out.get(3, 4) <= center);
    }

    #[test]
    fn box_blur_averages_window() {
        // 3x3 window over a single bright pixel: 255 / 9 ≈ 28.
        let mut img = Image::<u8>::new(5, 5, 1);
        img.set(2, 2, 255);
        let out = box_blur(&img, 1);
        let v = out.get(2, 2);
        assert!((27..=29).contains(&v), "got {v}");
    }

    #[test]
    fn median_removes_salt_noise() {
        let mut img = Image::<u8>::new(7, 7, 1);
        for y in 0..7 {
            for x in 0..7 {
                img.set(x, y, 100);
            }
        }
        img.set(3, 3, 255); // isolated impulse
        let out = median_filter(&img, 1);
        assert_eq!(out.get(3, 3), 100);
    }

    #[test]
    fn median_preserves_step_edge() {
        let mut img = Image::<u8>::new(8, 8, 1);
        for y in 0..8 {
            for x in 4..8 {
                img.set(x, y, 200);
            }
        }
        let out = median_filter(&img, 1);
        assert_eq!(out.get(1, 4), 0);
        assert_eq!(out.get(6, 4), 200);
    }

    #[test]
    fn radius_zero_is_identity() {
        let img = Image::from_vec(3, 1, 1, vec![1u8, 2, 3]);
        assert_eq!(gaussian_blur(&img, 0, 1.0), img);
        assert_eq!(box_blur(&img, 0), img);
        assert_eq!(median_filter(&img, 0), img);
    }

    #[test]
    fn box_blur_f32_matches_naive_mean() {
        let img = Image::from_fn(10, 6, 1, |x, y| {
            vec![(x as f32 * 1.5 + y as f32 * 0.25).sin()]
        });
        let r = 2usize;
        let out = box_blur_f32(&img.map(|v| v), r);
        // Naive reference at an interior pixel.
        let (cx, cy) = (5usize, 3usize);
        let mut acc = 0f64;
        for dy in -(r as isize)..=(r as isize) {
            for dx in -(r as isize)..=(r as isize) {
                let sx = (cx as isize + dx).clamp(0, 9) as usize;
                let sy = (cy as isize + dy).clamp(0, 5) as usize;
                acc += img.get(sx, sy) as f64;
            }
        }
        let expected = (acc / 25.0) as f32;
        assert!((out.get(cx, cy) - expected).abs() < 1e-4);
    }

    #[test]
    fn box_blur_f32_constant_is_fixed_point() {
        let mut img = Image::<f32>::new(20, 20, 1);
        img.fill(&[3.25]);
        let out = box_blur_f32(&img, 7);
        assert!(out.as_slice().iter().all(|&v| (v - 3.25).abs() < 1e-5));
    }

    #[test]
    fn box_blur_f32_large_radius_converges_to_mean() {
        let img = Image::from_fn(8, 8, 1, |x, _| vec![x as f32]);
        let out = box_blur_f32(&img, 100);
        // With replication the exact value differs from the plain mean, but
        // every output must be strictly inside the input range and flat-ish.
        let spread = out
            .as_slice()
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(mn, mx), &v| {
                (mn.min(v), mx.max(v))
            });
        assert!(spread.1 - spread.0 < 3.0);
    }

    #[test]
    fn parallel_and_sequential_paths_agree() {
        // 128x128 takes the parallel path; recompute a small crop via the
        // sequential path and compare interior pixels.
        let big = Image::from_fn(128, 128, 1, |x, y| vec![((x * 7 + y * 13) % 251) as u8]);
        let blurred_big = gaussian_blur(&big, 2, 1.0);
        let crop = big.crop(32, 32, 16, 16);
        let blurred_crop = gaussian_blur(&crop, 2, 1.0);
        // Interior pixels (away from crop borders) must agree.
        for y in 4..12 {
            for x in 4..12 {
                assert_eq!(blurred_crop.get(x, y), blurred_big.get(32 + x, 32 + y));
            }
        }
    }
}
