//! Connected-component labeling of binary masks (4- or 8-connectivity),
//! with per-component statistics — the substrate for lead (crack)
//! analysis on open-water masks.

use crate::buffer::Image;

/// Pixel connectivity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Connectivity {
    /// Edge-adjacent neighbours only.
    Four,
    /// Edge- and corner-adjacent neighbours.
    Eight,
}

/// Statistics of one connected component.
#[derive(Clone, Debug, PartialEq)]
pub struct Component {
    /// Component label (≥ 1; 0 is background).
    pub label: u32,
    /// Pixel count.
    pub area: usize,
    /// Bounding box `(x0, y0, x1, y1)`, inclusive.
    pub bbox: (usize, usize, usize, usize),
    /// Centroid `(x, y)`.
    pub centroid: (f64, f64),
}

impl Component {
    /// Bounding-box width in pixels.
    pub fn width(&self) -> usize {
        self.bbox.2 - self.bbox.0 + 1
    }

    /// Bounding-box height in pixels.
    pub fn height(&self) -> usize {
        self.bbox.3 - self.bbox.1 + 1
    }

    /// Elongation: long bbox side over short side (≥ 1). Thin linear
    /// features (leads) have high elongation.
    pub fn elongation(&self) -> f64 {
        let (w, h) = (self.width() as f64, self.height() as f64);
        w.max(h) / w.min(h).max(1.0)
    }

    /// Mean thickness estimate: area over the long bbox side. For a
    /// roughly linear feature this approximates its width in pixels.
    pub fn mean_thickness(&self) -> f64 {
        self.area as f64 / self.width().max(self.height()) as f64
    }
}

/// Labels connected components of the nonzero pixels of a single-channel
/// mask. Returns the label image (`u32`, 0 = background) and per-component
/// statistics sorted by descending area.
///
/// Uses a two-pass union-find, O(pixels · α).
///
/// # Panics
/// Panics if `mask` is not single-channel.
pub fn connected_components(
    mask: &Image<u8>,
    connectivity: Connectivity,
) -> (Image<u32>, Vec<Component>) {
    assert_eq!(mask.channels(), 1, "expected a single-channel mask");
    let (w, h) = mask.dimensions();
    let mut labels = Image::<u32>::new(w, h, 1);
    if w == 0 || h == 0 {
        return (labels, Vec::new());
    }

    // Union-find over provisional labels.
    let mut parent: Vec<u32> = vec![0]; // parent[0] = background sentinel
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    fn union(parent: &mut [u32], a: u32, b: u32) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi as usize] = lo;
        }
    }

    // First pass: provisional labels from already-visited neighbours.
    for y in 0..h {
        for x in 0..w {
            if mask.get(x, y) == 0 {
                continue;
            }
            let mut neighbours: [Option<u32>; 4] = [None; 4];
            let mut k = 0;
            if x > 0 && mask.get(x - 1, y) != 0 {
                neighbours[k] = Some(labels.get(x - 1, y));
                k += 1;
            }
            if y > 0 && mask.get(x, y - 1) != 0 {
                neighbours[k] = Some(labels.get(x, y - 1));
                k += 1;
            }
            if connectivity == Connectivity::Eight && y > 0 {
                if x > 0 && mask.get(x - 1, y - 1) != 0 {
                    neighbours[k] = Some(labels.get(x - 1, y - 1));
                    k += 1;
                }
                if x + 1 < w && mask.get(x + 1, y - 1) != 0 {
                    neighbours[k] = Some(labels.get(x + 1, y - 1));
                    k += 1;
                }
            }
            let assigned = match neighbours[..k].iter().flatten().copied().min() {
                Some(mn) => {
                    for n in neighbours[..k].iter().flatten() {
                        union(&mut parent, mn, *n);
                    }
                    mn
                }
                None => {
                    let fresh = parent.len() as u32;
                    parent.push(fresh);
                    fresh
                }
            };
            labels.set(x, y, assigned);
        }
    }

    // Second pass: resolve to root labels, compact to 1..=n, accumulate
    // statistics.
    let mut compact: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut stats: Vec<Component> = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let l = labels.get(x, y);
            if l == 0 {
                continue;
            }
            let root = find(&mut parent, l);
            let next_id = compact.len() as u32 + 1;
            let id = *compact.entry(root).or_insert(next_id);
            labels.set(x, y, id);
            if id as usize > stats.len() {
                stats.push(Component {
                    label: id,
                    area: 0,
                    bbox: (x, y, x, y),
                    centroid: (0.0, 0.0),
                });
            }
            let c = &mut stats[id as usize - 1];
            c.area += 1;
            c.bbox.0 = c.bbox.0.min(x);
            c.bbox.1 = c.bbox.1.min(y);
            c.bbox.2 = c.bbox.2.max(x);
            c.bbox.3 = c.bbox.3.max(y);
            c.centroid.0 += x as f64;
            c.centroid.1 += y as f64;
        }
    }
    for c in &mut stats {
        c.centroid.0 /= c.area as f64;
        c.centroid.1 /= c.area as f64;
    }
    stats.sort_by(|a, b| b.area.cmp(&a.area).then(a.label.cmp(&b.label)));
    (labels, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from(rows: &[&str]) -> Image<u8> {
        let h = rows.len();
        let w = rows[0].len();
        let mut m = Image::<u8>::new(w, h, 1);
        for (y, row) in rows.iter().enumerate() {
            for (x, ch) in row.bytes().enumerate() {
                if ch == b'#' {
                    m.set(x, y, 255);
                }
            }
        }
        m
    }

    #[test]
    fn two_separate_blobs() {
        let m = mask_from(&["##..", "##..", "...#", "...#"]);
        let (_, comps) = connected_components(&m, Connectivity::Four);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].area, 4);
        assert_eq!(comps[1].area, 2);
        assert_eq!(comps[0].bbox, (0, 0, 1, 1));
    }

    #[test]
    fn diagonal_touch_depends_on_connectivity() {
        let m = mask_from(&["#.", ".#"]);
        let (_, four) = connected_components(&m, Connectivity::Four);
        assert_eq!(four.len(), 2);
        let (_, eight) = connected_components(&m, Connectivity::Eight);
        assert_eq!(eight.len(), 1);
    }

    #[test]
    fn u_shape_merges_via_union_find() {
        // The two arms meet at the bottom only — first pass gives them
        // different provisional labels that union-find must merge.
        let m = mask_from(&["#.#", "#.#", "###"]);
        let (labels, comps) = connected_components(&m, Connectivity::Four);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 7);
        assert_eq!(labels.get(0, 0), labels.get(2, 0));
    }

    #[test]
    fn empty_mask_yields_nothing() {
        let m = Image::<u8>::new(4, 4, 1);
        let (_, comps) = connected_components(&m, Connectivity::Eight);
        assert!(comps.is_empty());
    }

    #[test]
    fn full_mask_is_one_component() {
        let mut m = Image::<u8>::new(5, 3, 1);
        m.fill(&[1]);
        let (_, comps) = connected_components(&m, Connectivity::Four);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 15);
        assert_eq!(comps[0].bbox, (0, 0, 4, 2));
        let (cx, cy) = comps[0].centroid;
        assert!((cx - 2.0).abs() < 1e-9 && (cy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn elongation_and_thickness_of_a_line() {
        let m = mask_from(&["........", "########", "........"]);
        let (_, comps) = connected_components(&m, Connectivity::Four);
        let c = &comps[0];
        assert_eq!(c.area, 8);
        assert!((c.elongation() - 8.0).abs() < 1e-9);
        assert!((c.mean_thickness() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn labels_are_dense_from_one() {
        let m = mask_from(&["#.#.#"]);
        let (labels, comps) = connected_components(&m, Connectivity::Four);
        assert_eq!(comps.len(), 3);
        let mut seen: Vec<u32> = labels
            .as_slice()
            .iter()
            .copied()
            .filter(|&l| l > 0)
            .collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen, vec![1, 2, 3]);
    }
}
