//! Image resampling: nearest-neighbour and bilinear. Used when moving
//! between scene resolution and model input resolution.

use crate::buffer::Image;

/// Nearest-neighbour resize to `(new_w, new_h)`.
///
/// # Panics
/// Panics if the source or target has a zero dimension.
pub fn resize_nearest(src: &Image<u8>, new_w: usize, new_h: usize) -> Image<u8> {
    let (w, h) = src.dimensions();
    assert!(w > 0 && h > 0 && new_w > 0 && new_h > 0, "zero-size resize");
    let c = src.channels();
    let mut out = Image::<u8>::new(new_w, new_h, c);
    for y in 0..new_h {
        let sy = (y * h) / new_h;
        for x in 0..new_w {
            let sx = (x * w) / new_w;
            out.put_pixel(x, y, src.pixel(sx, sy));
        }
    }
    out
}

/// Bilinear resize to `(new_w, new_h)` with half-pixel-centred sampling
/// (matches OpenCV's `INTER_LINEAR` grid alignment).
///
/// # Panics
/// Panics if the source or target has a zero dimension.
pub fn resize_bilinear(src: &Image<u8>, new_w: usize, new_h: usize) -> Image<u8> {
    let (w, h) = src.dimensions();
    assert!(w > 0 && h > 0 && new_w > 0 && new_h > 0, "zero-size resize");
    let c = src.channels();
    let mut out = Image::<u8>::new(new_w, new_h, c);
    let sx_ratio = w as f32 / new_w as f32;
    let sy_ratio = h as f32 / new_h as f32;
    for y in 0..new_h {
        let fy = ((y as f32 + 0.5) * sy_ratio - 0.5).clamp(0.0, (h - 1) as f32);
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(h - 1);
        let wy = fy - y0 as f32;
        for x in 0..new_w {
            let fx = ((x as f32 + 0.5) * sx_ratio - 0.5).clamp(0.0, (w - 1) as f32);
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(w - 1);
            let wx = fx - x0 as f32;
            for ch in 0..c {
                let p00 = src.pixel(x0, y0)[ch] as f32;
                let p10 = src.pixel(x1, y0)[ch] as f32;
                let p01 = src.pixel(x0, y1)[ch] as f32;
                let p11 = src.pixel(x1, y1)[ch] as f32;
                let top = p00 + (p10 - p00) * wx;
                let bot = p01 + (p11 - p01) * wx;
                out.pixel_mut(x, y)[ch] = (top + (bot - top) * wy).round() as u8;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_identity() {
        let img = Image::from_fn(4, 4, 1, |x, y| vec![(y * 4 + x) as u8]);
        assert_eq!(resize_nearest(&img, 4, 4), img);
    }

    #[test]
    fn nearest_upscale_replicates() {
        let img = Image::from_vec(2, 1, 1, vec![10u8, 20]);
        let out = resize_nearest(&img, 4, 1);
        assert_eq!(out.as_slice(), &[10, 10, 20, 20]);
    }

    #[test]
    fn nearest_downscale_samples() {
        let img = Image::from_vec(4, 1, 1, vec![1u8, 2, 3, 4]);
        let out = resize_nearest(&img, 2, 1);
        assert_eq!(out.as_slice(), &[1, 3]);
    }

    #[test]
    fn bilinear_identity() {
        let img = Image::from_fn(4, 4, 3, |x, y| vec![(y * 4 + x) as u8, 0, 255]);
        assert_eq!(resize_bilinear(&img, 4, 4), img);
    }

    #[test]
    fn bilinear_constant_is_preserved() {
        let mut img = Image::<u8>::new(3, 3, 1);
        img.fill(&[99]);
        let out = resize_bilinear(&img, 7, 5);
        assert!(out.as_slice().iter().all(|&v| v == 99));
    }

    #[test]
    fn bilinear_2x_interpolates_midpoints() {
        let img = Image::from_vec(2, 1, 1, vec![0u8, 100]);
        let out = resize_bilinear(&img, 4, 1);
        // Half-pixel centers: samples at src x = -0.25, 0.25, 0.75, 1.25.
        assert_eq!(out.get(0, 0), 0);
        assert_eq!(out.get(1, 0), 25);
        assert_eq!(out.get(2, 0), 75);
        assert_eq!(out.get(3, 0), 100);
    }
}
