//! Binary/grayscale morphology with rectangular structuring elements:
//! erosion, dilation, opening, closing. Used to clean up cloud and class
//! masks after thresholding.

use crate::buffer::Image;
use crate::PAR_THRESHOLD;
use rayon::prelude::*;

#[derive(Clone, Copy)]
enum MorphOp {
    Erode,
    Dilate,
}

fn morph(src: &Image<u8>, radius: usize, op: MorphOp) -> Image<u8> {
    assert_eq!(
        src.channels(),
        1,
        "morphology expects a single-channel image"
    );
    if radius == 0 {
        return src.clone();
    }
    let (w, h) = src.dimensions();
    if w == 0 || h == 0 {
        return src.clone();
    }

    // Separable: rectangular min/max filter = horizontal pass then vertical.
    fn pass_impl<F: Fn(usize, usize) -> u8 + Sync>(
        w: usize,
        h: usize,
        radius: usize,
        op: MorphOp,
        input: F,
        horizontal: bool,
        out: &mut [u8],
    ) {
        let run_row = |y: usize, dst: &mut [u8]| {
            for (x, d) in dst.iter_mut().enumerate() {
                let mut acc = match op {
                    MorphOp::Erode => u8::MAX,
                    MorphOp::Dilate => u8::MIN,
                };
                for k in 0..=2 * radius {
                    let (sx, sy) = if horizontal {
                        ((x + k).saturating_sub(radius).min(w - 1), y)
                    } else {
                        (x, (y + k).saturating_sub(radius).min(h - 1))
                    };
                    let v = input(sx, sy);
                    acc = match op {
                        MorphOp::Erode => acc.min(v),
                        MorphOp::Dilate => acc.max(v),
                    };
                }
                *d = acc;
            }
        };
        if w * h >= PAR_THRESHOLD {
            out.par_chunks_exact_mut(w)
                .enumerate()
                .for_each(|(y, row)| run_row(y, row));
        } else {
            for (y, row) in out.chunks_exact_mut(w).enumerate() {
                run_row(y, row);
            }
        }
    }

    let mut tmp = vec![0u8; w * h];
    pass_impl(w, h, radius, op, |x, y| src.get(x, y), true, &mut tmp);
    let mut out = Image::<u8>::new(w, h, 1);
    {
        let tmp_ref = &tmp;
        pass_impl(
            w,
            h,
            radius,
            op,
            |x, y| tmp_ref[y * w + x],
            false,
            out.as_mut_slice(),
        );
    }
    out
}

/// Grayscale erosion with a `(2 * radius + 1)²` rectangular structuring
/// element (replicated borders).
pub fn erode(src: &Image<u8>, radius: usize) -> Image<u8> {
    morph(src, radius, MorphOp::Erode)
}

/// Grayscale dilation with a `(2 * radius + 1)²` rectangular structuring
/// element (replicated borders).
pub fn dilate(src: &Image<u8>, radius: usize) -> Image<u8> {
    morph(src, radius, MorphOp::Dilate)
}

/// Morphological opening (erosion then dilation) — removes small bright
/// specks.
pub fn open(src: &Image<u8>, radius: usize) -> Image<u8> {
    dilate(&erode(src, radius), radius)
}

/// Morphological closing (dilation then erosion) — fills small dark holes.
pub fn close(src: &Image<u8>, radius: usize) -> Image<u8> {
    erode(&dilate(src, radius), radius)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_image() -> Image<u8> {
        // A 3x3 bright blob centered in a 9x9 image, plus an isolated pixel.
        let mut img = Image::<u8>::new(9, 9, 1);
        for y in 3..6 {
            for x in 3..6 {
                img.set(x, y, 255);
            }
        }
        img.set(0, 0, 255);
        img
    }

    #[test]
    fn erode_shrinks_blobs() {
        let out = erode(&blob_image(), 1);
        assert_eq!(out.get(4, 4), 255, "blob center survives");
        assert_eq!(out.get(3, 3), 0, "blob corner eroded");
        // The isolated top-left pixel is at the border; replication keeps its
        // neighbourhood partially dark so it still erodes away.
        assert_eq!(out.get(0, 0), 0);
    }

    #[test]
    fn dilate_grows_blobs() {
        let out = dilate(&blob_image(), 1);
        assert_eq!(out.get(2, 2), 255, "dilation extends the blob");
        assert_eq!(out.get(7, 7), 0, "far pixels untouched");
    }

    #[test]
    fn open_removes_specks_keeps_blobs() {
        let out = open(&blob_image(), 1);
        assert_eq!(out.get(0, 0), 0, "isolated speck removed");
        assert_eq!(out.get(4, 4), 255, "large blob kept");
    }

    #[test]
    fn close_fills_holes() {
        let mut img = Image::<u8>::new(9, 9, 1);
        for y in 2..7 {
            for x in 2..7 {
                img.set(x, y, 255);
            }
        }
        img.set(4, 4, 0); // 1-pixel hole
        let out = close(&img, 1);
        assert_eq!(out.get(4, 4), 255, "hole filled");
    }

    #[test]
    fn erode_dilate_are_dual() {
        // erode(x) == 255 - dilate(255 - x)
        let img = blob_image();
        let inv = img.map(|v| 255 - v);
        let a = erode(&img, 1);
        let b = dilate(&inv, 1).map(|v| 255 - v);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn radius_zero_is_identity() {
        let img = blob_image();
        assert_eq!(erode(&img, 0), img);
        assert_eq!(dilate(&img, 0), img);
    }

    #[test]
    fn constant_image_is_fixed_point() {
        let mut img = Image::<u8>::new(8, 8, 1);
        img.fill(&[77]);
        assert_eq!(erode(&img, 2).as_slice(), img.as_slice());
        assert_eq!(dilate(&img, 2).as_slice(), img.as_slice());
    }
}
