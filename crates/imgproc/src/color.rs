//! Color-space conversions following OpenCV's 8-bit conventions.
//!
//! The auto-labeling thresholds in the paper are specified in OpenCV HSV
//! coordinates (`H ∈ [0, 180)`, `S, V ∈ [0, 255]`), so these conversions
//! replicate `cv::cvtColor` for `COLOR_RGB2HSV` / `COLOR_HSV2RGB` /
//! `COLOR_RGB2GRAY` on `CV_8U` data.

use crate::buffer::Image;
use crate::PAR_THRESHOLD;
use rayon::prelude::*;

/// Converts one 8-bit RGB pixel to OpenCV-convention HSV.
///
/// Hue is in `[0, 180)` (degrees halved to fit a byte), saturation and value
/// in `[0, 255]`.
#[inline]
pub fn rgb_pixel_to_hsv(r: u8, g: u8, b: u8) -> [u8; 3] {
    let (rf, gf, bf) = (r as f32, g as f32, b as f32);
    let v = rf.max(gf).max(bf);
    let min = rf.min(gf).min(bf);
    let delta = v - min;

    let s = if v > 0.0 { 255.0 * delta / v } else { 0.0 };

    let h = if delta == 0.0 {
        0.0
    } else if v == rf {
        60.0 * (gf - bf) / delta
    } else if v == gf {
        120.0 + 60.0 * (bf - rf) / delta
    } else {
        240.0 + 60.0 * (rf - gf) / delta
    };
    let h = if h < 0.0 { h + 360.0 } else { h };

    [
        (h / 2.0).round().min(179.0) as u8,
        s.round().min(255.0) as u8,
        v.round() as u8,
    ]
}

/// Integer-only replica of [`rgb_pixel_to_hsv`], bit-identical for every
/// 8-bit input.
///
/// The float reference computes `round(255·Δ/V)` and `round(h°/2)` in
/// `f32`. Both are rationals with denominators ≤ 510, so their distance
/// from any half-integer rounding boundary is at least `1/1020` — three
/// orders of magnitude above the accumulated `f32` rounding error — which
/// makes `floor((2·num + den) / (2·den))` an exact integer equivalent.
/// The fused auto-label kernel relies on this (and
/// `tests/fused_vs_reference.rs` proves it over the full input space).
#[inline]
pub fn rgb_pixel_to_hsv_int(r: u8, g: u8, b: u8) -> [u8; 3] {
    let (ri, gi, bi) = (r as i32, g as i32, b as i32);
    let v = ri.max(gi).max(bi);
    let min = ri.min(gi).min(bi);
    let delta = v - min;

    // round(255·Δ/V) = floor((510·Δ + V) / (2·V)).
    let s = if v > 0 {
        (510 * delta + v) / (2 * v)
    } else {
        0
    };

    let h = if delta == 0 {
        0
    } else {
        // Branch order matches the reference exactly: `v == rf` wins ties.
        let (base, n) = if v == ri {
            (if gi >= bi { 0 } else { 360 }, gi - bi)
        } else if v == gi {
            (120, bi - ri)
        } else {
            (240, ri - gi)
        };
        // h° = base + 60·n/Δ (non-negative by construction);
        // round(h°/2) = floor((base·Δ + 60·n + Δ) / (2·Δ)).
        let num = base * delta + 60 * n;
        ((num + delta) / (2 * delta)).min(179)
    };

    [h as u8, s as u8, v as u8]
}

/// Converts one OpenCV-convention HSV pixel back to 8-bit RGB.
#[inline]
pub fn hsv_pixel_to_rgb(h: u8, s: u8, v: u8) -> [u8; 3] {
    let h = h as f32 * 2.0; // degrees
    let s = s as f32 / 255.0;
    let v = v as f32;

    let c = v * s;
    let hp = h / 60.0;
    let x = c * (1.0 - (hp % 2.0 - 1.0).abs());
    let (r1, g1, b1) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = v - c;
    [
        (r1 + m).round().clamp(0.0, 255.0) as u8,
        (g1 + m).round().clamp(0.0, 255.0) as u8,
        (b1 + m).round().clamp(0.0, 255.0) as u8,
    ]
}

fn convert_3ch(src: &Image<u8>, f: impl Fn(u8, u8, u8) -> [u8; 3] + Sync) -> Image<u8> {
    assert_eq!(src.channels(), 3, "expected a 3-channel image");
    let mut out = Image::<u8>::new(src.width(), src.height(), 3);
    let apply = |dst: &mut [u8], s: &[u8]| {
        for (d, p) in dst.chunks_exact_mut(3).zip(s.chunks_exact(3)) {
            d.copy_from_slice(&f(p[0], p[1], p[2]));
        }
    };
    if src.pixel_count() >= PAR_THRESHOLD {
        let stride = src.width() * 3;
        out.as_mut_slice()
            .par_chunks_exact_mut(stride)
            .zip(src.as_slice().par_chunks_exact(stride))
            .for_each(|(dst, s)| apply(dst, s));
    } else {
        apply(out.as_mut_slice(), src.as_slice());
    }
    out
}

/// Converts a 3-channel RGB image to OpenCV-convention HSV.
///
/// # Panics
/// Panics if `src` is not 3-channel.
pub fn rgb_to_hsv(src: &Image<u8>) -> Image<u8> {
    convert_3ch(src, rgb_pixel_to_hsv)
}

/// Converts an OpenCV-convention HSV image back to RGB.
///
/// # Panics
/// Panics if `src` is not 3-channel.
pub fn hsv_to_rgb(src: &Image<u8>) -> Image<u8> {
    convert_3ch(src, hsv_pixel_to_rgb)
}

/// Converts RGB to single-channel luma with OpenCV's BT.601 weights
/// (`0.299 R + 0.587 G + 0.114 B`).
///
/// # Panics
/// Panics if `src` is not 3-channel.
pub fn rgb_to_gray(src: &Image<u8>) -> Image<u8> {
    assert_eq!(src.channels(), 3, "expected a 3-channel image");
    let mut out = Image::<u8>::new(src.width(), src.height(), 1);
    let apply = |dst: &mut [u8], s: &[u8]| {
        for (d, p) in dst.iter_mut().zip(s.chunks_exact(3)) {
            let y = 0.299 * p[0] as f32 + 0.587 * p[1] as f32 + 0.114 * p[2] as f32;
            *d = y.round().min(255.0) as u8;
        }
    };
    if src.pixel_count() >= PAR_THRESHOLD {
        out.as_mut_slice()
            .par_chunks_exact_mut(src.width())
            .zip(src.as_slice().par_chunks_exact(src.width() * 3))
            .for_each(|(dst, s)| apply(dst, s));
    } else {
        apply(out.as_mut_slice(), src.as_slice());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_colors_to_hsv() {
        // Pure red: H=0, S=255, V=255.
        assert_eq!(rgb_pixel_to_hsv(255, 0, 0), [0, 255, 255]);
        // Pure green: H=120° → 60 in OpenCV half-degrees.
        assert_eq!(rgb_pixel_to_hsv(0, 255, 0), [60, 255, 255]);
        // Pure blue: H=240° → 120.
        assert_eq!(rgb_pixel_to_hsv(0, 0, 255), [120, 255, 255]);
    }

    #[test]
    fn grays_have_zero_saturation() {
        for v in [0u8, 31, 128, 204, 255] {
            let hsv = rgb_pixel_to_hsv(v, v, v);
            assert_eq!(hsv[0], 0);
            assert_eq!(hsv[1], 0);
            assert_eq!(hsv[2], v);
        }
    }

    #[test]
    fn hsv_roundtrip_is_close() {
        // HSV is quantized (hue halved), so allow a small channel tolerance.
        for &(r, g, b) in &[
            (12u8, 200u8, 100u8),
            (255, 255, 255),
            (0, 0, 0),
            (210, 215, 230),
            (40, 40, 45),
        ] {
            let [h, s, v] = rgb_pixel_to_hsv(r, g, b);
            let [r2, g2, b2] = hsv_pixel_to_rgb(h, s, v);
            assert!(
                (r as i32 - r2 as i32).abs() <= 3
                    && (g as i32 - g2 as i32).abs() <= 3
                    && (b as i32 - b2 as i32).abs() <= 3,
                "roundtrip too lossy: ({r},{g},{b}) -> ({r2},{g2},{b2})"
            );
        }
    }

    #[test]
    fn image_level_matches_pixel_level() {
        let mut img = Image::<u8>::new(3, 1, 3);
        img.put_pixel(0, 0, &[255, 0, 0]);
        img.put_pixel(1, 0, &[10, 20, 30]);
        img.put_pixel(2, 0, &[200, 200, 200]);
        let hsv = rgb_to_hsv(&img);
        assert_eq!(hsv.pixel(0, 0), &rgb_pixel_to_hsv(255, 0, 0));
        assert_eq!(hsv.pixel(1, 0), &rgb_pixel_to_hsv(10, 20, 30));
        assert_eq!(hsv.pixel(2, 0), &rgb_pixel_to_hsv(200, 200, 200));
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Build an image big enough to take the rayon path and compare a few
        // pixels against the scalar kernel.
        let w = 128;
        let img = Image::from_fn(w, w, 3, |x, y| {
            vec![(x % 256) as u8, (y % 256) as u8, ((x + y) % 256) as u8]
        });
        let hsv = rgb_to_hsv(&img);
        for &(x, y) in &[(0, 0), (63, 17), (127, 127)] {
            let p = img.pixel(x, y);
            assert_eq!(hsv.pixel(x, y), &rgb_pixel_to_hsv(p[0], p[1], p[2]));
        }
    }

    #[test]
    fn integer_hsv_matches_float_on_boundary_pixels() {
        // The exhaustive proof lives in tests/fused_vs_reference.rs; spot
        // checks here cover the branch and rounding edges.
        for &(r, g, b) in &[
            (255u8, 0u8, 0u8),
            (0, 255, 0),
            (0, 0, 255),
            (255, 255, 255),
            (0, 0, 0),
            (255, 254, 255), // v == r and v == b: branch tie
            (128, 128, 127),
            (255, 0, 1), // near the hue wrap
            (1, 0, 255),
            (203, 204, 205),
            (31, 30, 29),
        ] {
            assert_eq!(
                rgb_pixel_to_hsv_int(r, g, b),
                rgb_pixel_to_hsv(r, g, b),
                "int/float HSV mismatch at ({r},{g},{b})"
            );
        }
    }

    #[test]
    fn gray_conversion_weights() {
        let mut img = Image::<u8>::new(1, 1, 3);
        img.put_pixel(0, 0, &[255, 0, 0]);
        assert_eq!(rgb_to_gray(&img).get(0, 0), 76); // 0.299 * 255 ≈ 76
        let mut img = Image::<u8>::new(1, 1, 3);
        img.put_pixel(0, 0, &[255, 255, 255]);
        assert_eq!(rgb_to_gray(&img).get(0, 0), 255);
    }
}
