//! Minimal binary PPM (P6) / PGM (P5) reading and writing, so every stage
//! of the workflow can be inspected with standard image viewers without an
//! external codec dependency.

use crate::buffer::Image;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes a 3-channel 8-bit image as binary PPM (P6).
///
/// # Errors
/// Any underlying I/O error.
///
/// # Panics
/// Panics if `img` is not 3-channel.
pub fn write_ppm(path: impl AsRef<Path>, img: &Image<u8>) -> io::Result<()> {
    assert_eq!(img.channels(), 3, "PPM requires a 3-channel image");
    // seaice-lint: allow(raw-fs-write-in-durable-path) reason="PPM exports are regenerable inspection artifacts, never state anything resumes from"
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P6\n{} {}\n255\n", img.width(), img.height())?;
    w.write_all(img.as_slice())?;
    w.flush()
}

/// Writes a single-channel 8-bit image as binary PGM (P5).
///
/// # Errors
/// Any underlying I/O error.
///
/// # Panics
/// Panics if `img` is not single-channel.
pub fn write_pgm(path: impl AsRef<Path>, img: &Image<u8>) -> io::Result<()> {
    assert_eq!(img.channels(), 1, "PGM requires a single-channel image");
    // seaice-lint: allow(raw-fs-write-in-durable-path) reason="PGM exports are regenerable inspection artifacts, never state anything resumes from"
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P5\n{} {}\n255\n", img.width(), img.height())?;
    w.write_all(img.as_slice())?;
    w.flush()
}

fn read_header_token(r: &mut impl BufRead) -> io::Result<String> {
    // Skips whitespace and `#` comments between tokens, per Netpbm spec.
    let mut tok = String::new();
    let mut byte = [0u8; 1];
    loop {
        r.read_exact(&mut byte)?;
        match byte[0] {
            b'#' => {
                let mut line = String::new();
                r.read_line(&mut line)?;
            }
            c if c.is_ascii_whitespace() => {
                if !tok.is_empty() {
                    return Ok(tok);
                }
            }
            c => tok.push(c as char),
        }
    }
}

fn parse_dims(r: &mut impl BufRead) -> io::Result<(usize, usize)> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let w: usize = read_header_token(r)?
        .parse()
        .map_err(|_| bad("bad width"))?;
    let h: usize = read_header_token(r)?
        .parse()
        .map_err(|_| bad("bad height"))?;
    let maxval: usize = read_header_token(r)?
        .parse()
        .map_err(|_| bad("bad maxval"))?;
    if maxval != 255 {
        return Err(bad("only maxval 255 is supported"));
    }
    Ok((w, h))
}

/// Reads a binary PPM (P6) file into a 3-channel image.
///
/// # Errors
/// I/O errors or malformed/unsupported headers.
pub fn read_ppm(path: impl AsRef<Path>) -> io::Result<Image<u8>> {
    let mut r = BufReader::new(File::open(path)?);
    let magic = read_header_token(&mut r)?;
    if magic != "P6" {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a P6 PPM"));
    }
    let (w, h) = parse_dims(&mut r)?;
    let mut data = vec![0u8; w * h * 3];
    r.read_exact(&mut data)?;
    Ok(Image::from_vec(w, h, 3, data))
}

/// Reads a binary PGM (P5) file into a single-channel image.
///
/// # Errors
/// I/O errors or malformed/unsupported headers.
pub fn read_pgm(path: impl AsRef<Path>) -> io::Result<Image<u8>> {
    let mut r = BufReader::new(File::open(path)?);
    let magic = read_header_token(&mut r)?;
    if magic != "P5" {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a P5 PGM"));
    }
    let (w, h) = parse_dims(&mut r)?;
    let mut data = vec![0u8; w * h];
    r.read_exact(&mut data)?;
    Ok(Image::from_vec(w, h, 1, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("seaice-imgproc-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn ppm_roundtrip() {
        let img = Image::from_fn(5, 3, 3, |x, y| vec![x as u8, y as u8, (x * y) as u8]);
        let p = tmp("rt.ppm");
        write_ppm(&p, &img).unwrap();
        let back = read_ppm(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(back, img);
    }

    #[test]
    fn pgm_roundtrip() {
        let img = Image::from_fn(4, 4, 1, |x, y| vec![(x * 4 + y) as u8]);
        let p = tmp("rt.pgm");
        write_pgm(&p, &img).unwrap();
        let back = read_pgm(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(back, img);
    }

    #[test]
    fn rejects_wrong_magic() {
        let img = Image::from_fn(2, 2, 1, |_, _| vec![0u8]);
        let p = tmp("magic.pgm");
        write_pgm(&p, &img).unwrap();
        let err = read_ppm(&p).unwrap_err();
        std::fs::remove_file(&p).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn header_comments_are_skipped() {
        let p = tmp("comment.pgm");
        std::fs::write(&p, b"P5\n# a comment\n2 1\n255\nAB").unwrap();
        let img = read_pgm(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(img.as_slice(), b"AB");
    }
}
