//! Histogram computation and histogram-based utilities.

use crate::buffer::Image;

/// 256-bin histogram of a single-channel 8-bit image.
///
/// # Panics
/// Panics if `src` is not single-channel.
pub fn histogram_u8(src: &Image<u8>) -> [u64; 256] {
    assert_eq!(
        src.channels(),
        1,
        "histogram expects a single-channel image"
    );
    let mut hist = [0u64; 256];
    for &v in src.as_slice() {
        hist[v as usize] += 1;
    }
    hist
}

/// Per-channel histograms of a multi-channel 8-bit image.
pub fn histogram_per_channel(src: &Image<u8>) -> Vec<[u64; 256]> {
    let c = src.channels();
    let mut hists = vec![[0u64; 256]; c];
    for px in src.as_slice().chunks_exact(c) {
        for (h, &v) in hists.iter_mut().zip(px) {
            h[v as usize] += 1;
        }
    }
    hists
}

/// Cumulative distribution of a histogram (same length, monotone).
pub fn cumulative(hist: &[u64; 256]) -> [u64; 256] {
    let mut cdf = [0u64; 256];
    let mut acc = 0u64;
    for (c, &h) in cdf.iter_mut().zip(hist.iter()) {
        acc += h;
        *c = acc;
    }
    cdf
}

/// The `p`-quantile sample value (`p ∈ [0, 1]`) of a single-channel image.
///
/// # Panics
/// Panics if the image is empty or `p` is outside `[0, 1]`.
pub fn quantile_u8(src: &Image<u8>, p: f64) -> u8 {
    assert!((0.0..=1.0).contains(&p), "quantile must be in [0, 1]");
    let hist = histogram_u8(src);
    let cdf = cumulative(&hist);
    let total = cdf[255];
    assert!(total > 0, "quantile of an empty image");
    let target = (p * total as f64).ceil().max(1.0) as u64;
    cdf.iter().position(|&c| c >= target).unwrap_or(255) as u8
}

/// Histogram equalization of a single-channel 8-bit image, spreading the
/// intensity CDF across the full range.
pub fn equalize(src: &Image<u8>) -> Image<u8> {
    let hist = histogram_u8(src);
    let cdf = cumulative(&hist);
    let total = cdf[255];
    if total == 0 {
        return src.clone();
    }
    let cdf_min = cdf.iter().copied().find(|&c| c > 0).unwrap_or(0);
    let denom = (total - cdf_min).max(1);
    let lut: Vec<u8> = cdf
        .iter()
        .map(|&c| (((c.saturating_sub(cdf_min)) as f64 / denom as f64) * 255.0).round() as u8)
        .collect();
    src.map(|v| lut[v as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_values() {
        let img = Image::from_vec(4, 1, 1, vec![0u8, 0, 7, 255]);
        let h = histogram_u8(&img);
        assert_eq!(h[0], 2);
        assert_eq!(h[7], 1);
        assert_eq!(h[255], 1);
        assert_eq!(h.iter().sum::<u64>(), 4);
    }

    #[test]
    fn per_channel_histograms() {
        let img = Image::from_vec(2, 1, 2, vec![1u8, 9, 1, 9]);
        let hs = histogram_per_channel(&img);
        assert_eq!(hs[0][1], 2);
        assert_eq!(hs[1][9], 2);
    }

    #[test]
    fn cumulative_is_monotone_and_total() {
        let img = Image::from_vec(3, 1, 1, vec![5u8, 5, 200]);
        let cdf = cumulative(&histogram_u8(&img));
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cdf[255], 3);
        assert_eq!(cdf[5], 2);
    }

    #[test]
    fn quantile_picks_order_statistics() {
        let img = Image::from_vec(5, 1, 1, vec![10u8, 20, 30, 40, 50]);
        assert_eq!(quantile_u8(&img, 0.0), 10);
        assert_eq!(quantile_u8(&img, 0.5), 30);
        assert_eq!(quantile_u8(&img, 1.0), 50);
    }

    #[test]
    fn equalize_spreads_range() {
        let img = Image::from_vec(4, 1, 1, vec![100u8, 110, 120, 130]);
        let eq = equalize(&img);
        let mn = *eq.as_slice().iter().min().unwrap();
        let mx = *eq.as_slice().iter().max().unwrap();
        assert_eq!(mn, 0);
        assert_eq!(mx, 255);
    }

    #[test]
    fn equalize_constant_image_is_stable() {
        let img = Image::from_vec(3, 1, 1, vec![42u8; 3]);
        let eq = equalize(&img);
        // A constant image has a degenerate CDF; output must stay constant.
        assert!(eq.as_slice().windows(2).all(|w| w[0] == w[1]));
    }
}
