//! Property-based tests for the image-processing substrate.

use proptest::prelude::*;
use seaice_imgproc::buffer::Image;
use seaice_imgproc::color::{hsv_pixel_to_rgb, rgb_pixel_to_hsv, rgb_pixel_to_hsv_int};
use seaice_imgproc::filter::{box_blur, gaussian_blur, median_filter};
use seaice_imgproc::morphology::{dilate, erode};
use seaice_imgproc::ops::{absdiff, in_range, min_max_normalize};
use seaice_imgproc::threshold::{otsu_threshold, threshold, ThresholdType};

/// Reference connected-components via BFS flood fill, for comparison
/// against the union-find implementation.
fn flood_fill_count(mask: &Image<u8>, eight: bool) -> usize {
    let (w, h) = mask.dimensions();
    let mut seen = vec![false; w * h];
    let mut count = 0;
    for sy in 0..h {
        for sx in 0..w {
            if mask.get(sx, sy) == 0 || seen[sy * w + sx] {
                continue;
            }
            count += 1;
            let mut stack = vec![(sx, sy)];
            seen[sy * w + sx] = true;
            while let Some((x, y)) = stack.pop() {
                let mut push = |nx: isize, ny: isize| {
                    if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                        let (nx, ny) = (nx as usize, ny as usize);
                        if mask.get(nx, ny) != 0 && !seen[ny * w + nx] {
                            seen[ny * w + nx] = true;
                            stack.push((nx, ny));
                        }
                    }
                };
                let (xi, yi) = (x as isize, y as isize);
                push(xi - 1, yi);
                push(xi + 1, yi);
                push(xi, yi - 1);
                push(xi, yi + 1);
                if eight {
                    push(xi - 1, yi - 1);
                    push(xi + 1, yi - 1);
                    push(xi - 1, yi + 1);
                    push(xi + 1, yi + 1);
                }
            }
        }
    }
    count
}

fn arb_gray(max_side: usize) -> impl Strategy<Value = Image<u8>> {
    (1..=max_side, 1..=max_side).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h)
            .prop_map(move |data| Image::from_vec(w, h, 1, data))
    })
}

proptest! {
    #[test]
    fn hsv_hue_in_opencv_range(r: u8, g: u8, b: u8) {
        let [h, _s, v] = rgb_pixel_to_hsv(r, g, b);
        prop_assert!(h < 180);
        prop_assert_eq!(v, r.max(g).max(b));
    }

    #[test]
    fn gray_pixels_have_zero_saturation(v: u8) {
        let [h, s, _v] = rgb_pixel_to_hsv(v, v, v);
        prop_assert_eq!(s, 0);
        prop_assert_eq!(h, 0);
        prop_assert_eq!(rgb_pixel_to_hsv_int(v, v, v), [0, 0, v]);
    }

    #[test]
    fn integer_hsv_matches_float_reference(r: u8, g: u8, b: u8) {
        prop_assert_eq!(rgb_pixel_to_hsv_int(r, g, b), rgb_pixel_to_hsv(r, g, b));
    }

    #[test]
    fn hsv_to_rgb_to_hsv_roundtrips_within_tolerance(
        h in 0u8..180, s in 64u8..=255, v in 64u8..=255,
    ) {
        // Saturation and value floors keep the chroma large enough that
        // RGB integer quantization cannot blow up the recovered hue.
        let [r, g, b] = hsv_pixel_to_rgb(h, s, v);
        let [h2, s2, v2] = rgb_pixel_to_hsv(r, g, b);
        prop_assert_eq!(v2, v, "value must roundtrip exactly");
        prop_assert!((s2 as i32 - s as i32).abs() <= 8, "s {} vs {}", s, s2);
        let dh = (h2 as i32 - h as i32).abs();
        prop_assert!(dh.min(180 - dh) <= 4, "h {} vs {}", h, h2);
    }

    #[test]
    fn hsv_value_roundtrips_exactly(r: u8, g: u8, b: u8) {
        // V = max(R,G,B) survives an HSV roundtrip exactly; chroma may be
        // quantized but max channel magnitude is preserved to ±2.
        let [h, s, v] = rgb_pixel_to_hsv(r, g, b);
        let [r2, g2, b2] = hsv_pixel_to_rgb(h, s, v);
        let v2 = r2.max(g2).max(b2);
        prop_assert!((v as i32 - v2 as i32).abs() <= 2, "{} vs {}", v, v2);
    }

    #[test]
    fn otsu_threshold_within_value_range(img in arb_gray(16)) {
        let t = otsu_threshold(&img);
        let mn = *img.as_slice().iter().min().unwrap();
        let mx = *img.as_slice().iter().max().unwrap();
        prop_assert!(t >= mn && t <= mx, "t={} outside [{}, {}]", t, mn, mx);
    }

    #[test]
    fn binary_threshold_is_two_valued(img in arb_gray(16), t: u8) {
        let out = threshold(&img, t, 255, ThresholdType::Binary);
        prop_assert!(out.as_slice().iter().all(|&v| v == 0 || v == 255));
    }

    #[test]
    fn trunc_threshold_never_exceeds_t(img in arb_gray(16), t: u8) {
        let out = threshold(&img, t, 255, ThresholdType::Trunc);
        prop_assert!(out.as_slice().iter().all(|&v| v <= t));
    }

    #[test]
    fn minmax_normalize_is_bounded(img in arb_gray(16)) {
        let out = min_max_normalize(&img, 10, 240);
        prop_assert!(out.as_slice().iter().all(|&v| (10..=240).contains(&v)));
        // If the input has spread, the output must hit both endpoints.
        let mn = img.as_slice().iter().min().unwrap();
        let mx = img.as_slice().iter().max().unwrap();
        if mn != mx {
            prop_assert!(out.as_slice().contains(&10));
            prop_assert!(out.as_slice().contains(&240));
        }
    }

    #[test]
    fn absdiff_triangle(img in arb_gray(12)) {
        // absdiff(a, a) == 0
        let z = absdiff(&img, &img);
        prop_assert!(z.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn in_range_mask_is_binary_and_monotone(img in arb_gray(12), lo: u8, hi: u8) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mask = in_range(&img, &[lo], &[hi]);
        prop_assert!(mask.as_slice().iter().all(|&v| v == 0 || v == 255));
        // Widening the range can only add pixels.
        let wider = in_range(&img, &[lo.saturating_sub(10)], &[hi.saturating_add(10)]);
        for (m, w) in mask.as_slice().iter().zip(wider.as_slice()) {
            prop_assert!(*w >= *m);
        }
    }

    #[test]
    fn erosion_le_identity_le_dilation(img in arb_gray(12)) {
        let e = erode(&img, 1);
        let d = dilate(&img, 1);
        for ((&ev, &ov), &dv) in e.as_slice().iter().zip(img.as_slice()).zip(d.as_slice()) {
            prop_assert!(ev <= ov && ov <= dv);
        }
    }

    #[test]
    fn blurs_preserve_range(img in arb_gray(12)) {
        let mn = *img.as_slice().iter().min().unwrap();
        let mx = *img.as_slice().iter().max().unwrap();
        for out in [gaussian_blur(&img, 1, 0.8), box_blur(&img, 1), median_filter(&img, 1)] {
            // Rounding in the separable passes can stray by 1 level.
            prop_assert!(out
                .as_slice()
                .iter()
                .all(|&v| v as i32 >= mn as i32 - 1 && v as i32 <= mx as i32 + 1));
        }
    }

    #[test]
    fn union_find_components_match_flood_fill(
        bits in proptest::collection::vec(proptest::bool::ANY, 64),
        eight: bool,
    ) {
        use seaice_imgproc::components::{connected_components, Connectivity};
        let data: Vec<u8> = bits.iter().map(|&b| if b { 255 } else { 0 }).collect();
        let mask = Image::from_vec(8, 8, 1, data);
        let conn = if eight { Connectivity::Eight } else { Connectivity::Four };
        let (labels, comps) = connected_components(&mask, conn);
        prop_assert_eq!(comps.len(), flood_fill_count(&mask, eight));
        // Component areas sum to the nonzero pixel count, and every
        // nonzero pixel carries a label while background carries none.
        let nonzero = mask.as_slice().iter().filter(|&&v| v != 0).count();
        let area_sum: usize = comps.iter().map(|c| c.area).sum();
        prop_assert_eq!(area_sum, nonzero);
        for (m, l) in mask.as_slice().iter().zip(labels.as_slice()) {
            prop_assert_eq!(*m != 0, *l != 0);
        }
    }

    #[test]
    fn median_is_idempotent_on_constant(v: u8, side in 2..10usize) {
        let mut img = Image::<u8>::new(side, side, 1);
        img.fill(&[v]);
        let out = median_filter(&img, 1);
        prop_assert!(out.as_slice().iter().all(|&o| o == v));
    }
}
