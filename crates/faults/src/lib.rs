//! # seaice-faults
//!
//! Deterministic, seed-driven fault injection for the three execution
//! layers (`mapreduce` executors, `distrib` ranks, `serve` replicas).
//!
//! Real clusters lose executors, straggle, and restart mid-job; the
//! fault-tolerance machinery that copes with that is only trustworthy if
//! it can be exercised *reproducibly*. A [`FaultPlan`] is a pure function
//! from `(site, key)` to a [`FaultAction`]: the decision depends only on
//! the plan's seed, the site name, and a caller-supplied stable key (task
//! index + attempt, `(world, rank, epoch, step)`, request hash, …) — never
//! on thread scheduling — so a chaos test that kills executor 2 on task
//! 7's first attempt kills exactly that, every run.
//!
//! Two ways to arm a site:
//!
//! * **explicit kill lists** ([`FaultPlan::fail_keys`]) — fire a chosen
//!   action for an exact set of keys (the precision tool chaos tests use);
//! * **probabilistic rules** ([`FaultPlan::with_rule`]) — hash
//!   `(seed, site, key)` into `[0, 1)` and compare against per-action
//!   probabilities (the soak-style tool).
//!
//! The default [`FaultPlan::disabled`] plan has no rules and decides
//! [`FaultAction::None`] for everything in a handful of instructions, so
//! production paths thread a plan through unconditionally and the happy
//! path stays bit-identical (pinned by the existing differential tests).
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an armed fault point does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Nothing injected; proceed normally.
    None,
    /// Panic at the site (a crashed worker/executor/rank).
    Panic,
    /// Return a transient `io::Error` (a flaky read, a dropped packet).
    Error,
    /// Sleep for the rule's delay before proceeding (a straggler).
    Delay(Duration),
}

/// Probabilistic arming of one site. Probabilities are evaluated in the
/// order panic → error → delay against a single uniform draw, so their
/// sum should stay ≤ 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultRule {
    /// Probability a call at this site panics.
    pub panic_prob: f64,
    /// Probability a call at this site gets a transient error.
    pub error_prob: f64,
    /// Probability a call at this site is delayed by `delay`.
    pub delay_prob: f64,
    /// Straggler delay applied when the delay branch fires.
    pub delay: Duration,
}

impl FaultRule {
    /// A rule that panics with probability `p`.
    pub fn panics(p: f64) -> Self {
        Self {
            panic_prob: p,
            ..Self::default()
        }
    }

    /// A rule that returns a transient error with probability `p`.
    pub fn errors(p: f64) -> Self {
        Self {
            error_prob: p,
            ..Self::default()
        }
    }

    /// A rule that delays by `delay` with probability `p`.
    pub fn delays(p: f64, delay: Duration) -> Self {
        Self {
            delay_prob: p,
            delay,
            ..Self::default()
        }
    }
}

/// A deterministic fault plan: seed + per-site rules + explicit kill
/// lists. Cheap to share behind an `Arc`; decisions are lock-free and the
/// only mutable state is the fired-injection counters.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    // BTreeMaps, not HashMaps: the derived Debug on a plan appears in
    // chaos-test failure output, and that output must be byte-stable
    // across runs to diff cleanly.
    rules: BTreeMap<String, FaultRule>,
    /// Exact `(site, key)` → action injections, checked before rules.
    targeted: BTreeMap<(String, u64), FaultAction>,
    /// Number of injections fired (actions other than `None`).
    fired: AtomicU64,
    /// When armed by [`FaultPlan::recording`], every firing is appended
    /// here so a failed soak schedule can print its minimized
    /// `(seed, site, key)` repro line.
    log: Option<Mutex<Vec<FiredFault>>>,
}

/// One recorded firing: which site fired, at which key, doing what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FiredFault {
    /// Site name the injection point passed to [`FaultPlan::fire`].
    pub site: String,
    /// Caller-supplied stable key.
    pub key: u64,
    /// The action that fired (never [`FaultAction::None`]).
    pub action: FaultAction,
}

impl FaultPlan {
    /// The no-op plan every production path uses by default: no rules, no
    /// targets, every decision is [`FaultAction::None`].
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An empty plan with a seed, ready for rules and kill lists.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Arms `site` with a probabilistic rule (builder-style).
    #[must_use]
    pub fn with_rule(mut self, site: &str, rule: FaultRule) -> Self {
        self.rules.insert(site.to_string(), rule);
        self
    }

    /// Arms exact keys at `site` with `action` (builder-style). This is
    /// the precision tool: `fail_keys("mapreduce.task", &[mix(7, 0)],
    /// Panic)` kills exactly task 7's first attempt.
    #[must_use]
    pub fn fail_keys(mut self, site: &str, keys: &[u64], action: FaultAction) -> Self {
        for &k in keys {
            self.targeted.insert((site.to_string(), k), action);
        }
        self
    }

    /// Turns on the fired-fault log (builder-style): every firing is
    /// recorded with its `(site, key, action)` so a failing chaos/soak
    /// schedule can be minimized to an exact repro line. Off by default —
    /// production paths pay only the atomic counter.
    #[must_use]
    pub fn recording(mut self) -> Self {
        self.log = Some(Mutex::new(Vec::new()));
        self
    }

    /// The firings recorded so far (empty unless
    /// [`recording`](FaultPlan::recording) armed the log). Order is the
    /// order firings were observed, which may interleave across threads.
    pub fn fired_log(&self) -> Vec<FiredFault> {
        self.log
            .as_ref()
            .map(|l| l.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .unwrap_or_default()
    }

    /// True when the plan can never fire (the disabled/default plan).
    pub fn is_disabled(&self) -> bool {
        self.rules.is_empty() && self.targeted.is_empty()
    }

    /// Total injections fired so far (all sites).
    pub fn injections_fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Pure decision: what happens at `(site, key)`. Does **not** record
    /// a firing; use [`fire`](FaultPlan::fire) at actual injection points.
    pub fn decide(&self, site: &str, key: u64) -> FaultAction {
        if self.is_disabled() {
            return FaultAction::None;
        }
        // Allocation-free lookup would need a borrowed key pair; targeted
        // maps are tiny and chaos-only, so a transient String is fine.
        if let Some(&action) = self.targeted.get(&(site.to_string(), key)) {
            return action;
        }
        let Some(rule) = self.rules.get(site) else {
            return FaultAction::None;
        };
        let draw = unit_draw(self.seed, site, key);
        if draw < rule.panic_prob {
            FaultAction::Panic
        } else if draw < rule.panic_prob + rule.error_prob {
            FaultAction::Error
        } else if draw < rule.panic_prob + rule.error_prob + rule.delay_prob {
            FaultAction::Delay(rule.delay)
        } else {
            FaultAction::None
        }
    }

    /// Decides and records the firing. Injection points call this once
    /// per visit.
    pub fn fire(&self, site: &str, key: u64) -> FaultAction {
        let action = self.decide(site, key);
        if action != FaultAction::None {
            self.fired.fetch_add(1, Ordering::Relaxed);
            if let Some(log) = &self.log {
                log.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(FiredFault {
                        site: site.to_string(),
                        key,
                        action,
                    });
            }
        }
        action
    }

    /// Injection helper for panic-only sites: panics with a recognizable
    /// message when the plan says so, sleeps through `Delay`, and treats
    /// `Error` as a panic too (the site has no error channel).
    ///
    /// # Panics
    /// When the plan fires `Panic` or `Error` at `(site, key)`.
    pub fn maybe_panic(&self, site: &str, key: u64) {
        match self.fire(site, key) {
            FaultAction::None => {}
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Panic | FaultAction::Error => {
                // seaice-lint: allow(panic-in-library) reason="panicking is this function's documented purpose (# Panics above): it simulates a crash for the chaos harness, and callers opt in by arming a plan"
                panic!("injected fault at {site} (key {key})")
            }
        }
    }

    /// Injection helper for fallible sites: sleeps through `Delay`,
    /// returns a transient `io::Error` for `Error`, panics for `Panic`.
    ///
    /// # Errors
    /// `io::ErrorKind::Interrupted` when the plan fires `Error`.
    ///
    /// # Panics
    /// When the plan fires `Panic`.
    pub fn maybe_fail(&self, site: &str, key: u64) -> std::io::Result<()> {
        match self.fire(site, key) {
            FaultAction::None => Ok(()),
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
            FaultAction::Error => Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("injected transient fault at {site} (key {key})"),
            )),
            // seaice-lint: allow(panic-in-library) reason="panicking is this function's documented purpose (# Panics above): it simulates a crash for the chaos harness, and callers opt in by arming a plan"
            FaultAction::Panic => panic!("injected fault at {site} (key {key})"),
        }
    }
}

/// Mixes two stable identifiers into one key (task index + attempt,
/// rank + step, …). SplitMix64-style finalization keeps distinct pairs
/// from colliding in practice.
pub fn mix(a: u64, b: u64) -> u64 {
    splitmix64(a.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(b))
}

/// Deterministic uniform draw in `[0, 1)` from `(seed, site, key)`.
fn unit_draw(seed: u64, site: &str, key: u64) -> f64 {
    let h = splitmix64(seed ^ fnv1a(site.as_bytes()) ^ splitmix64(key));
    // 53 mantissa bits → uniform double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(plan.is_disabled());
        for key in 0..1000 {
            assert_eq!(plan.decide("anything", key), FaultAction::None);
        }
        assert_eq!(plan.injections_fired(), 0);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlan::seeded(7).with_rule("s", FaultRule::panics(0.3));
        let b = FaultPlan::seeded(7).with_rule("s", FaultRule::panics(0.3));
        let c = FaultPlan::seeded(8).with_rule("s", FaultRule::panics(0.3));
        let decide_all = |p: &FaultPlan| (0..256).map(|k| p.decide("s", k)).collect::<Vec<_>>();
        assert_eq!(decide_all(&a), decide_all(&b));
        assert_ne!(decide_all(&a), decide_all(&c), "seed must matter");
    }

    #[test]
    fn probabilities_hit_roughly_the_requested_rate() {
        let plan = FaultPlan::seeded(42).with_rule("s", FaultRule::panics(0.25));
        let hits = (0..4000)
            .filter(|&k| plan.decide("s", k) == FaultAction::Panic)
            .count();
        let rate = hits as f64 / 4000.0;
        assert!((0.2..0.3).contains(&rate), "panic rate {rate}");
    }

    #[test]
    fn action_branches_partition_the_draw() {
        let plan = FaultPlan::seeded(3).with_rule(
            "s",
            FaultRule {
                panic_prob: 0.2,
                error_prob: 0.2,
                delay_prob: 0.2,
                delay: Duration::from_millis(1),
            },
        );
        let mut counts = [0usize; 4];
        for k in 0..3000 {
            match plan.decide("s", k) {
                FaultAction::None => counts[0] += 1,
                FaultAction::Panic => counts[1] += 1,
                FaultAction::Error => counts[2] += 1,
                FaultAction::Delay(_) => counts[3] += 1,
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = if i == 0 { 0.4 } else { 0.2 };
            let rate = c as f64 / 3000.0;
            assert!(
                (rate - expected).abs() < 0.06,
                "branch {i} rate {rate} vs {expected}"
            );
        }
    }

    #[test]
    fn targeted_keys_override_rules() {
        let plan = FaultPlan::seeded(1)
            .with_rule("s", FaultRule::panics(0.0))
            .fail_keys("s", &[5, 9], FaultAction::Error);
        assert_eq!(plan.decide("s", 4), FaultAction::None);
        assert_eq!(plan.decide("s", 5), FaultAction::Error);
        assert_eq!(plan.decide("s", 9), FaultAction::Error);
        assert_eq!(plan.decide("other", 5), FaultAction::None, "site-scoped");
    }

    #[test]
    fn sites_draw_independently() {
        let plan = FaultPlan::seeded(11)
            .with_rule("a", FaultRule::panics(0.5))
            .with_rule("b", FaultRule::panics(0.5));
        let a: Vec<_> = (0..128).map(|k| plan.decide("a", k)).collect();
        let b: Vec<_> = (0..128).map(|k| plan.decide("b", k)).collect();
        assert_ne!(a, b, "sites must not share a stream");
    }

    #[test]
    fn maybe_fail_returns_transient_error() {
        let plan = FaultPlan::seeded(0).fail_keys("io", &[1], FaultAction::Error);
        assert!(plan.maybe_fail("io", 0).is_ok());
        let e = plan.maybe_fail("io", 1).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::Interrupted);
        assert_eq!(plan.injections_fired(), 1);
    }

    #[test]
    fn maybe_panic_panics_on_armed_key() {
        let plan = FaultPlan::seeded(0).fail_keys("w", &[3], FaultAction::Panic);
        plan.maybe_panic("w", 2); // disarmed key is a no-op
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.maybe_panic("w", 3)));
        assert!(caught.is_err());
    }

    #[test]
    fn recording_plan_logs_every_firing() {
        let plan = FaultPlan::seeded(0)
            .fail_keys("io", &[1, 3], FaultAction::Error)
            .recording();
        assert!(plan.maybe_fail("io", 0).is_ok());
        assert!(plan.maybe_fail("io", 1).is_err());
        assert!(plan.maybe_fail("io", 3).is_err());
        let log = plan.fired_log();
        assert_eq!(
            log,
            vec![
                FiredFault {
                    site: "io".into(),
                    key: 1,
                    action: FaultAction::Error
                },
                FiredFault {
                    site: "io".into(),
                    key: 3,
                    action: FaultAction::Error
                },
            ]
        );
        // Non-recording plans stay silent and free.
        let quiet = FaultPlan::seeded(0).fail_keys("io", &[1], FaultAction::Error);
        let _ = quiet.maybe_fail("io", 1);
        assert!(quiet.fired_log().is_empty());
    }

    #[test]
    fn mix_separates_pairs() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..64u64 {
            for b in 0..64u64 {
                assert!(seen.insert(mix(a, b)), "collision at ({a}, {b})");
            }
        }
    }
}
