//! The injected-regression fixture pair CI drives through
//! `reproduce bench-check`: the regressed set carries a 2.5× closed-loop
//! p99 (past the 0.5 tolerance) and nothing else out of band, so the
//! comparator must flag exactly that one metric — and pass the baseline
//! against itself.

use std::path::Path;

fn fixture(dir: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/bench_check")
        .join(dir)
}

#[test]
fn regressed_fixture_flags_exactly_the_latency_regression() {
    let (checked, regs) =
        seaice_obs::bench::compare_dirs(&fixture("regressed"), &fixture("baseline"))
            .expect("fixture dirs compare");
    assert_eq!(checked, vec!["serve".to_string()]);
    assert_eq!(
        regs.len(),
        1,
        "only the p99 blowup should flag: {:?}",
        regs.iter().map(|r| r.to_string()).collect::<Vec<_>>()
    );
    assert_eq!(regs[0].metric, "closed_p99_ms");
    assert_eq!(regs[0].current, Some(31.25));
}

#[test]
fn baseline_fixture_is_clean_against_itself() {
    let (checked, regs) =
        seaice_obs::bench::compare_dirs(&fixture("baseline"), &fixture("baseline"))
            .expect("fixture dirs compare");
    assert_eq!(checked, vec!["serve".to_string()]);
    assert!(regs.is_empty(), "{:?}", regs[0].to_string());
}

#[test]
fn area_summaries_round_trip_and_name_their_files() {
    // The summaries the reproduce targets write must parse back under the
    // common schema and name the files bench-check expects.
    let t1 = seaice_bench::table1::run(seaice_bench::scale::Scale::Small);
    let s = t1.summary();
    assert_eq!(s.file_name(), "BENCH_label.json");
    let parsed = seaice_obs::bench::Summary::from_json(&s.to_json()).expect("label round-trips");
    assert!(parsed.metrics.contains_key("fused_speedup"));
    assert!(parsed.metrics.contains_key("sim_speedup_8p"));
}
