//! chaos-bench — the fault-injection / recovery demonstration
//! (DESIGN.md §4.3).
//!
//! Three rows, one discipline: each execution layer runs under a seeded
//! [`FaultPlan`] that kills a component mid-run, and the recovered result
//! is checked **byte-for-byte** against a fault-free (or planned-resume)
//! reference:
//!
//! * **mapreduce** — executor 1 panics on every task it touches; the
//!   scheduler retries, blacklists it, and the collected output set must
//!   equal the strict path's.
//! * **distrib** — rank 2 of 3 hits a transient all-reduce fault in
//!   epoch 1; training resumes from the epoch-0 checkpoint on the two
//!   survivors and must land exactly where a planned shrink-and-resume
//!   run lands.
//! * **serve** — the (single) replica panics mid-batch; the supervisor
//!   restores a fresh model from the checkpoint and every request is
//!   answered bit-identically to a direct `model.predict`.
//!
//! The table reports what each recovery cost: injections fired, retries
//! or restarts, and the extra attempts the simulated clock charged.

use crate::scale::Scale;
use seaice_distrib::{
    rank_fault_key, train_distributed_elastic, DgxA100Model, DistTrainConfig, ElasticConfig,
    ResumePoint,
};
use seaice_faults::{mix, FaultAction, FaultPlan};
use seaice_imgproc::buffer::Image;
use seaice_mapreduce::{ClusterSpec, CostModel, RunPolicy, Session};
use seaice_nn::dataloader::Sample;
use seaice_s2::synth::{generate, SceneConfig};
use seaice_serve::{tile_key, Engine, EngineConfig};
use seaice_unet::checkpoint::snapshot;
use seaice_unet::{UNet, UNetConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One recovered layer in the chaos table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosRow {
    /// Which execution layer the faults hit.
    pub layer: String,
    /// What was killed, in words.
    pub fault: String,
    /// Faults the plan actually fired.
    pub injections: u64,
    /// Recovery actions taken (task retries / resumed generations /
    /// replica restarts).
    pub recoveries: u64,
    /// Extra work the recovery cost (retried task attempts, re-run
    /// epochs, re-staged batches).
    pub wasted_attempts: u64,
    /// Recovered output equals the fault-free reference byte for byte.
    pub bit_identical: bool,
    /// Wall-clock seconds for the chaos run (reference excluded).
    pub wall_secs: f64,
}

/// The rendered chaos demonstration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosBench {
    /// Map-reduce items in the killed-executor job.
    pub items: usize,
    /// Training samples in the killed-rank run.
    pub samples: usize,
    /// Tiles served through the killed-replica engine.
    pub tiles: usize,
    /// One row per layer.
    pub rows: Vec<ChaosRow>,
}

fn scramble(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

/// Kill executor 1 of 4 under a resilient policy; compare the output set
/// with the strict scheduler's.
fn mapreduce_row(items: usize) -> ChaosRow {
    let data: Vec<u64> = (0..items as u64).collect();

    let s = Session::new(ClusterSpec::new(4, 2).unwrap(), CostModel::gcd_n2());
    let (df, _) = s.read(data.clone(), 8.0);
    let (lazy, _) = df.map(&s, scramble);
    let (want, _) = lazy.collect(&s, 8.0);

    let faults = Arc::new(FaultPlan::seeded(0xC0FFEE).fail_keys(
        "mapreduce.executor",
        &[1],
        FaultAction::Panic,
    ));
    let t0 = Instant::now();
    let s = Session::new(ClusterSpec::new(4, 2).unwrap(), CostModel::gcd_n2());
    let (df, _) = s.read(data, 8.0);
    let (lazy, _) = df.map(&s, scramble);
    let (got, _, ft) = lazy
        .collect_ft(&s, 8.0, RunPolicy::resilient(), Arc::clone(&faults))
        .expect("the job must survive one dead executor out of four");

    ChaosRow {
        layer: "mapreduce".into(),
        fault: "executor 1/4 panics on every task".into(),
        injections: faults.injections_fired(),
        recoveries: ft.retries as u64,
        wasted_attempts: (ft.attempts - ft.tasks) as u64,
        bit_identical: got == want,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

fn toy_samples(n: usize, side: usize) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let class = (i % 3) as u8;
            let level = [0.9f32, 0.5, 0.05][class as usize];
            Sample {
                image: vec![level; 3 * side * side],
                mask: vec![class; side * side],
                channels: 3,
                height: side,
                width: side,
            }
        })
        .collect()
}

fn tiny_unet_cfg() -> UNetConfig {
    UNetConfig {
        depth: 1,
        base_filters: 4,
        dropout: 0.0,
        seed: 23,
        ..UNetConfig::paper()
    }
}

/// Kill rank 2 of 3 before its (epoch 1, step 0) all-reduce; recovery
/// must match a planned 3-rank-head / 2-rank-tail resume bit for bit.
fn distrib_row(samples_n: usize) -> ChaosRow {
    let side = 8;
    let samples = toy_samples(samples_n, side);
    let perf = DgxA100Model::dgx_a100();
    let cfg = |ranks: usize, epochs: usize| DistTrainConfig {
        ranks,
        epochs,
        batch_size_per_rank: 2,
        learning_rate: 1e-3,
        shuffle_seed: Some(5),
    };

    let faults = Arc::new(FaultPlan::seeded(7).fail_keys(
        "distrib.allreduce",
        &[rank_fault_key(3, 2, 1, 0)],
        FaultAction::Error,
    ));
    let t0 = Instant::now();
    let (mut chaos_model, chaos) = train_distributed_elastic(
        tiny_unet_cfg(),
        samples.clone(),
        cfg(3, 3),
        &perf,
        ElasticConfig {
            checkpoint_every_epochs: 1,
            ..ElasticConfig::default()
        },
        Arc::clone(&faults),
    )
    .expect("training must survive one lost rank");
    let wall = t0.elapsed().as_secs_f64();

    let (mut head, head_report) = train_distributed_elastic(
        tiny_unet_cfg(),
        samples.clone(),
        cfg(3, 1),
        &perf,
        ElasticConfig::default(),
        Arc::new(FaultPlan::disabled()),
    )
    .expect("reference head run");
    let (mut planned_model, planned) = train_distributed_elastic(
        tiny_unet_cfg(),
        samples,
        cfg(2, 3),
        &perf,
        ElasticConfig {
            resume: Some(ResumePoint {
                epoch: 1,
                checkpoint: snapshot(&mut head),
                prior_losses: head_report.epoch_losses,
            }),
            ..ElasticConfig::default()
        },
        Arc::new(FaultPlan::disabled()),
    )
    .expect("reference resume run");

    let x = seaice_nn::init::uniform(&[1, 3, side, side], 0.0, 1.0, 77);
    let bit_identical = chaos.epoch_losses == planned.epoch_losses
        && chaos_model.forward(&x, false) == planned_model.forward(&x, false);

    ChaosRow {
        layer: "distrib".into(),
        fault: "rank 2/3 dies before its epoch-1 all-reduce".into(),
        injections: faults.injections_fired(),
        recoveries: chaos.generations.saturating_sub(1) as u64,
        wasted_attempts: chaos
            .resumed_from_epochs
            .iter()
            .map(|&e| (e + 1) as u64)
            .sum(),
        bit_identical,
        wall_secs: wall,
    }
}

/// Kill the single serving replica on its first batch; the restored
/// replica must answer every tile exactly like a direct forward pass.
fn serve_row(tiles_n: usize) -> ChaosRow {
    let mut model = UNet::new(UNetConfig {
        depth: 1,
        base_filters: 4,
        dropout: 0.0,
        seed: 29,
        ..UNetConfig::paper()
    });
    let ckpt = snapshot(&mut model);
    let tiles: Vec<Image<u8>> = (0..tiles_n as u64)
        .map(|i| generate(&SceneConfig::tiny(16), 500 + i).rgb)
        .collect();

    let faults = Arc::new(FaultPlan::seeded(9).fail_keys(
        "serve.worker",
        &[mix(tile_key(&tiles[0]), 0)],
        FaultAction::Panic,
    ));
    let t0 = Instant::now();
    let engine = Engine::with_faults(
        &ckpt,
        EngineConfig {
            workers: 1,
            max_batch_size: 1,
            max_wait: Duration::from_millis(1),
            queue_capacity: 16,
            cache_capacity: 0,
            filter: false,
            ..EngineConfig::for_tile(16)
        },
        Arc::clone(&faults),
    )
    .expect("chaos engine config is valid");

    let mut bit_identical = true;
    for t in &tiles {
        let got = engine.classify(t.clone()).expect("no request may be lost");
        let chw = seaice_core::adapters::image_to_chw(t);
        let x = seaice_nn::Tensor::from_vec(&[1, 3, 16, 16], chw);
        bit_identical &= *got == model.predict(&x);
    }
    let stats = engine.stats();
    engine.shutdown();

    ChaosRow {
        layer: "serve".into(),
        fault: "replica 1/1 panics on its first batch".into(),
        injections: faults.injections_fired(),
        recoveries: stats.robustness.worker_restarts,
        wasted_attempts: stats.robustness.batch_retries,
        bit_identical,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

/// Runs the three seeded-kill scenarios at `scale`.
///
/// Injected panics are expected here, so their default stderr backtraces
/// are filtered out for the duration of the run; any *other* panic still
/// reports normally.
pub fn run(scale: Scale) -> ChaosBench {
    let (items, samples, tiles) = scale.chaos_workload();
    let rows = crate::with_suppressed_panics("injected fault", || {
        vec![mapreduce_row(items), distrib_row(samples), serve_row(tiles)]
    });
    ChaosBench {
        items,
        samples,
        tiles,
        rows,
    }
}

impl ChaosBench {
    /// The `BENCH_chaos.json` perf-trajectory summary: one
    /// zero-tolerance bit-identity claim per recovered layer, plus the
    /// injection/recovery counts and wall time with tolerances loose
    /// enough that only a collapse (a layer stops recovering, the run
    /// takes twice as long) flags.
    pub fn summary(&self) -> seaice_obs::bench::Summary {
        let mut s = seaice_obs::bench::Summary::new("chaos");
        let mut injections = 0u64;
        let mut recoveries = 0u64;
        let mut wall = 0.0f64;
        for r in &self.rows {
            s = s.metric(
                &format!("{}_bit_identical", r.layer),
                if r.bit_identical { 1.0 } else { 0.0 },
                "bool",
                true,
                0.0,
            );
            injections += r.injections;
            recoveries += r.recoveries;
            wall += r.wall_secs;
        }
        s.metric("injections_fired", injections as f64, "count", true, 1.0)
            .metric("recoveries", recoveries as f64, "count", true, 1.0)
            .metric("wall_secs", wall, "s", false, 1.0)
    }

    /// Renders the recovery table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "CHAOS BENCH: {} map-reduce items, {} training samples, {} served tiles — \
             every fault seeded, every recovery checked byte-for-byte\n",
            self.items, self.samples, self.tiles
        ));
        s.push_str(
            "layer     | fault                                        | fired | recov | wasted | identical | wall s\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:<9} | {:<44} | {:>5} | {:>5} | {:>6} | {:<9} | {:>6.3}\n",
                r.layer,
                r.fault,
                r.injections,
                r.recoveries,
                r.wasted_attempts,
                if r.bit_identical { "OK" } else { "MISMATCH" },
                r.wall_secs
            ));
        }
        s.push_str(
            "recov = task retries / resumed generations / replica restarts; \
             wasted = extra attempts or re-run epochs charged to the clock\n",
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaosbench_small_recovers_every_layer_bit_identically() {
        let b = run(Scale::Small);
        assert_eq!(b.rows.len(), 3);
        for r in &b.rows {
            assert!(r.injections >= 1, "{}: the plan never fired", r.layer);
            assert!(r.recoveries >= 1, "{}: nothing recovered", r.layer);
            assert!(r.bit_identical, "{}: recovery diverged", r.layer);
        }
        let table = b.render();
        assert!(table.contains("CHAOS BENCH"));
        assert!(table.contains("OK"));
        assert!(!table.contains("MISMATCH"));
    }
}
