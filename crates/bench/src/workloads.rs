//! Shared workload builders: tiles for the labeling-speed experiments and
//! datasets for the accuracy experiments.

use seaice_imgproc::buffer::Image;
use seaice_s2::clouds::{self, CloudConfig};
use seaice_s2::synth::{generate, SceneConfig};

/// Builds `n` contaminated RGB tiles of `side`² pixels — the input of the
/// Table I / Table II auto-labeling workload.
pub fn labeling_tiles(n: usize, side: usize, seed: u64) -> Vec<Image<u8>> {
    (0..n)
        .map(|i| {
            let s = seed.wrapping_add(i as u64);
            let scene = generate(&SceneConfig::tiny(side), s);
            // Half the tiles carry cloud/shadow, mirroring the catalog mix.
            if i % 2 == 0 {
                let layer = clouds::generate(
                    &CloudConfig {
                        coverage: 0.3,
                        ..CloudConfig::tiny(side)
                    },
                    s,
                    side,
                    side,
                );
                layer.apply(&scene.rgb)
            } else {
                scene.rgb
            }
        })
        .collect()
}

/// Measures the mean sequential per-tile auto-label cost (full filter +
/// segmentation) with the default (fused) backend, in seconds.
pub fn measure_per_tile_cost(tiles: &[Image<u8>]) -> f64 {
    use seaice_label::autolabel::AutoLabelConfig;
    assert!(!tiles.is_empty());
    measure_per_tile_cost_with(tiles, &AutoLabelConfig::filtered_for_tile(tiles[0].width()))
}

/// Measures the mean sequential per-tile auto-label cost for an arbitrary
/// configuration (backend / filter selection), in seconds.
pub fn measure_per_tile_cost_with(
    tiles: &[Image<u8>],
    cfg: &seaice_label::autolabel::AutoLabelConfig,
) -> f64 {
    use seaice_imgproc::buffer::Scratch;
    use seaice_label::autolabel::auto_label_scratch;
    assert!(!tiles.is_empty());
    let mut scratch = Scratch::new();
    let t0 = std::time::Instant::now();
    for t in tiles {
        std::hint::black_box(auto_label_scratch(t, cfg, &mut scratch));
    }
    t0.elapsed().as_secs_f64() / tiles.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_have_requested_shape_and_mix() {
        let tiles = labeling_tiles(6, 32, 1);
        assert_eq!(tiles.len(), 6);
        assert!(tiles.iter().all(|t| t.dimensions() == (32, 32)));
        // Cloudy and clean tiles differ even for the same scene seed.
        assert_ne!(tiles[0], tiles[1]);
    }

    #[test]
    fn per_tile_cost_is_positive() {
        let tiles = labeling_tiles(3, 32, 2);
        let c = measure_per_tile_cost(&tiles);
        assert!(c > 0.0 && c < 10.0);
    }
}
