//! infer-bench — f32 vs int8 inference, measured on this host.
//!
//! Two measurements per backend, reported side by side and written to
//! `BENCH_infer.json` by `reproduce infer`:
//!
//! * **forward ns/tile** — the raw single-tile forward pass (no serving
//!   machinery), best-of-`reps` so scheduler noise doesn't pollute the
//!   comparison;
//! * **serve req/s and p99** — the full `seaice-serve` closed-loop
//!   archive workload from [`crate::servebench`], re-run per backend.
//!
//! The table also reports the argmax agreement between the two backends
//! over the bench tiles — the differential the quantization error bound
//! is supposed to keep near 1.0 (the tier-1 `tests/quant_differential.rs`
//! enforces the ceiling; this prints the measured value).

use crate::scale::Scale;
use crate::servebench::{self, ServeBenchConfig};
use seaice_nn::Tensor;
use seaice_s2::synth::{generate, SceneConfig};
use seaice_unet::checkpoint::{snapshot, try_restore, try_restore_quantized, Checkpoint};
use seaice_unet::{InferBackend, UNet, UNetConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Inference-bench parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct InferBenchConfig {
    /// Tile side the model serves.
    pub tile_size: usize,
    /// Distinct tiles in the forward microbench.
    pub tiles: usize,
    /// Repetitions of the microbench; the best rep is reported.
    pub reps: usize,
    /// The serve workload driven once per backend.
    pub serve: ServeBenchConfig,
}

impl InferBenchConfig {
    /// The preset workload for `scale`.
    pub fn from_scale(scale: Scale) -> Self {
        let serve = ServeBenchConfig::from_scale(scale);
        let tiles = match scale {
            Scale::Small => 16,
            Scale::Medium => 32,
            Scale::Large => 64,
        };
        Self {
            tile_size: serve.tile_size,
            tiles,
            reps: 3,
            serve,
        }
    }
}

/// One backend's measured numbers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InferBenchRow {
    /// `"f32"` or `"int8"`.
    pub backend: String,
    /// Best-rep single-tile forward latency, nanoseconds.
    pub forward_ns_per_tile: f64,
    /// Closed-loop serve throughput, requests/s.
    pub serve_rps: f64,
    /// Closed-loop serve 99th-percentile latency, milliseconds.
    pub serve_p99_ms: f64,
    /// Did the engine output match its own sequential baseline bit for
    /// bit (within-backend determinism)?
    pub serve_bit_identical: bool,
}

/// Complete infer-bench result (the `BENCH_infer.json` payload).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InferBench {
    /// The workload that was driven.
    pub cfg: InferBenchConfig,
    /// f32 first, int8 second.
    pub rows: Vec<InferBenchRow>,
    /// f32 forward time / int8 forward time (>1 means int8 is faster).
    pub forward_speedup: f64,
    /// Fraction of pixels where both backends predict the same class
    /// over the microbench tiles.
    pub argmax_agreement: f64,
}

/// The same serving model `servebench` drives.
fn bench_checkpoint(tile_size: usize) -> Checkpoint {
    let cfg = UNetConfig {
        depth: 1,
        base_filters: 4,
        dropout: 0.0,
        seed: 0x5EA1CE,
        ..UNetConfig::paper()
    };
    cfg.assert_input_side(tile_size);
    snapshot(&mut UNet::new(cfg))
}

/// Runs the preset workload for `scale`.
pub fn run(scale: Scale) -> InferBench {
    run_config(InferBenchConfig::from_scale(scale))
}

/// Runs an explicit workload.
pub fn run_config(cfg: InferBenchConfig) -> InferBench {
    let ckpt = bench_checkpoint(cfg.tile_size);
    let mut f32_model = try_restore(&ckpt).expect("bench checkpoint restores");
    let calib = seaice_core::default_calibration(cfg.tile_size).expect("calibration set");
    let int8_model = try_restore_quantized(&ckpt, &calib).expect("bench checkpoint quantizes");

    let s = cfg.tile_size;
    let inputs: Vec<Tensor> = (0..cfg.tiles)
        .map(|i| {
            let rgb = generate(&SceneConfig::tiny(s), 6000 + i as u64).rgb;
            Tensor::from_vec(&[1, 3, s, s], seaice_core::adapters::image_to_chw(&rgb))
        })
        .collect();

    // --- Forward microbench: best-of-reps per backend ---------------------
    type Forward<'a> = Box<dyn FnMut(&Tensor, &mut Vec<u8>) + 'a>;
    let mut preds = Vec::new();
    let mut best = |mut f: Forward| -> f64 {
        let mut best_ns = f64::INFINITY;
        for _ in 0..cfg.reps.max(1) {
            let t0 = Instant::now();
            for x in &inputs {
                f(x, &mut preds);
            }
            let ns = t0.elapsed().as_nanos() as f64 / inputs.len() as f64;
            if ns < best_ns {
                best_ns = ns;
            }
        }
        best_ns
    };
    let f32_ns = best(Box::new(|x, out| f32_model.predict_into(x, out)));
    let int8_ns = best(Box::new(|x, out| int8_model.predict_into(x, out)));

    // --- Argmax agreement over the microbench tiles -----------------------
    let mut same = 0usize;
    let mut total = 0usize;
    let mut fp = Vec::new();
    let mut qp = Vec::new();
    for x in &inputs {
        f32_model.predict_into(x, &mut fp);
        int8_model.predict_into(x, &mut qp);
        same += fp.iter().zip(&qp).filter(|(a, b)| a == b).count();
        total += fp.len();
    }
    let argmax_agreement = same as f64 / total as f64;

    // --- Serve workload per backend ---------------------------------------
    let mut rows = Vec::with_capacity(2);
    for (backend, ns) in [(InferBackend::F32, f32_ns), (InferBackend::Int8, int8_ns)] {
        let b = servebench::run_config(ServeBenchConfig {
            backend,
            ..cfg.serve
        });
        // Row 1 is the engine closed-loop (see servebench's row order).
        let closed = &b.rows[1];
        rows.push(InferBenchRow {
            backend: backend.to_string(),
            forward_ns_per_tile: ns,
            serve_rps: closed.throughput_rps,
            serve_p99_ms: closed.p99_ms,
            serve_bit_identical: b.bit_identical,
        });
    }

    InferBench {
        cfg,
        forward_speedup: f32_ns / int8_ns.max(1.0),
        argmax_agreement,
        rows,
    }
}

impl InferBench {
    /// The `BENCH_infer.json` perf-trajectory summary in the common
    /// `seaice-bench/1` schema: the int8 payoff and agreement bound
    /// (tight — quantization quality is the claim), per-backend forward
    /// times (loose — host wall time), and the zero-tolerance
    /// within-backend determinism claim.
    pub fn summary(&self) -> seaice_obs::bench::Summary {
        let bit_identical = self.rows.iter().all(|r| r.serve_bit_identical);
        let mut s = seaice_obs::bench::Summary::new("infer")
            .metric("forward_speedup", self.forward_speedup, "x", true, 0.5)
            .metric(
                "argmax_agreement",
                self.argmax_agreement,
                "fraction",
                true,
                0.02,
            )
            .metric(
                "bit_identical",
                if bit_identical { 1.0 } else { 0.0 },
                "bool",
                true,
                0.0,
            );
        for r in &self.rows {
            s = s.metric(
                &format!("{}_forward_us", r.backend),
                r.forward_ns_per_tile / 1e3,
                "us",
                false,
                1.0,
            );
        }
        s
    }

    /// Renders the backend comparison table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "INFER BENCH: tile {}, {} microbench tiles x {} reps (best), serve workload {} scenes x {} passes\n",
            self.cfg.tile_size,
            self.cfg.tiles,
            self.cfg.reps,
            self.cfg.serve.scenes,
            self.cfg.serve.passes
        ));
        s.push_str("backend | forward us/tile | serve req/s | serve p99 ms | bit-identical\n");
        for r in &self.rows {
            s.push_str(&format!(
                "{:<7} | {:>15.1} | {:>11.1} | {:>12.2} | {}\n",
                r.backend,
                r.forward_ns_per_tile / 1e3,
                r.serve_rps,
                r.serve_p99_ms,
                if r.serve_bit_identical {
                    "OK"
                } else {
                    "MISMATCH"
                }
            ));
        }
        s.push_str(&format!(
            "int8 forward speedup over f32: {:.2}x; f32/int8 argmax agreement: {:.2}%\n",
            self.forward_speedup,
            self.argmax_agreement * 100.0
        ));
        s
    }

    /// The `BENCH_infer.json` payload.
    ///
    /// # Panics
    /// Never in practice (the struct always serializes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("InferBench serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inferbench_small_compares_backends_sanely() {
        let b = run_config(InferBenchConfig {
            tiles: 4,
            reps: 2,
            serve: ServeBenchConfig {
                scenes: 1,
                scene_side: 32,
                passes: 2,
                clients: 2,
                ..ServeBenchConfig::from_scale(Scale::Small)
            },
            ..InferBenchConfig::from_scale(Scale::Small)
        });
        assert_eq!(b.rows.len(), 2);
        assert_eq!(b.rows[0].backend, "f32");
        assert_eq!(b.rows[1].backend, "int8");
        for r in &b.rows {
            assert!(r.forward_ns_per_tile > 0.0, "{}", r.backend);
            assert!(r.serve_rps > 0.0, "{}", r.backend);
            assert!(r.serve_bit_identical, "{} engine diverged", r.backend);
        }
        // Quantization error must not scramble predictions wholesale.
        assert!(
            b.argmax_agreement > 0.95,
            "argmax agreement {:.3}",
            b.argmax_agreement
        );
        let json = b.to_json();
        assert!(json.contains("forward_speedup"));
        let table = b.render();
        assert!(table.contains("INFER BENCH"));
        assert!(table.contains("int8"));
    }
}
