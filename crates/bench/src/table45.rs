//! Tables IV & V, Figs. 11, 13, 14, and the §IV-B scene-labeling timing —
//! the accuracy side of the evaluation. These experiments involve **no
//! hardware substitution**: the full pipeline really runs, at a reduced
//! scale (both arms reduced identically, so the paper's comparisons are
//! preserved).

use crate::scale::Scale;
use seaice_core::adapters::{InputVariant, LabelSource};
use seaice_core::workflow::{evaluate_arm, train_models, ArmEvaluation, TrainedModels};
use seaice_core::WorkflowConfig;
use seaice_imgproc::buffer::Image;
use seaice_label::autolabel::{auto_label, AutoLabelConfig};
use seaice_metrics::ssim_rgb;
use seaice_s2::dataset::Dataset;
use seaice_s2::tiler::Tile;
use serde::{Deserialize, Serialize};

/// Converts an RGB image to CHW `[0,1]` floats (shared with table3).
pub fn chw(img: &Image<u8>) -> Vec<f32> {
    seaice_core::adapters::image_to_chw(img)
}

/// The trained state shared by the accuracy experiments.
pub struct AccuracyExperiments {
    /// Workflow configuration used.
    pub cfg: WorkflowConfig,
    /// The dataset (train + validation tiles).
    pub dataset: Dataset,
    /// The trained `U-Net-Man` / `U-Net-Auto` pair.
    pub models: TrainedModels,
    /// Host seconds spent training both models.
    pub train_secs: f64,
}

/// Builds the dataset and trains both models once.
pub fn prepare(scale: Scale) -> AccuracyExperiments {
    let (scenes, scene, tile, epochs) = scale.accuracy_dataset();
    let cfg = WorkflowConfig::scaled(scenes, scene, tile, epochs);
    let dataset = Dataset::build(cfg.dataset.clone());
    let t0 = std::time::Instant::now();
    let models = train_models(&dataset, &cfg);
    AccuracyExperiments {
        cfg,
        dataset,
        models,
        train_secs: t0.elapsed().as_secs_f64(),
    }
}

/// One Table IV cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AccuracyCell {
    /// Which model.
    pub labels: LabelSource,
    /// Which imagery variant.
    pub variant: InputVariant,
    /// The evaluation.
    pub eval: ArmEvaluation,
}

impl AccuracyExperiments {
    fn model_for(&mut self, labels: LabelSource) -> &mut seaice_unet::UNet {
        match labels {
            LabelSource::Manual => &mut self.models.unet_man,
            LabelSource::Auto => &mut self.models.unet_auto,
        }
    }

    fn eval_subset(
        &mut self,
        labels: LabelSource,
        variant: InputVariant,
        tiles: &[Tile],
    ) -> ArmEvaluation {
        let cfg = self.cfg.clone();
        evaluate_arm(self.model_for(labels), tiles, variant, &cfg)
    }

    /// Table IV: both models × {original, filtered} over the validation
    /// split.
    pub fn table4(&mut self) -> Vec<AccuracyCell> {
        let tiles = self.dataset.validation.clone();
        let mut out = Vec::new();
        for labels in [LabelSource::Manual, LabelSource::Auto] {
            for variant in [InputVariant::Original, InputVariant::Filtered] {
                out.push(AccuracyCell {
                    labels,
                    variant,
                    eval: self.eval_subset(labels, variant, &tiles),
                });
            }
        }
        out
    }

    /// Table V: the Table IV grid split into the paper's cloud-cover
    /// buckets (more / less than about 10 % cloud and shadow).
    pub fn table5(&mut self) -> Vec<(bool, AccuracyCell)> {
        let cloudy: Vec<Tile> = self
            .dataset
            .validation
            .iter()
            .filter(|t| t.is_cloudy())
            .cloned()
            .collect();
        let clear: Vec<Tile> = self
            .dataset
            .validation
            .iter()
            .filter(|t| !t.is_cloudy())
            .cloned()
            .collect();
        let mut out = Vec::new();
        for (is_cloudy, tiles) in [(true, &cloudy), (false, &clear)] {
            if tiles.is_empty() {
                continue;
            }
            for labels in [LabelSource::Manual, LabelSource::Auto] {
                for variant in [InputVariant::Original, InputVariant::Filtered] {
                    out.push((
                        is_cloudy,
                        AccuracyCell {
                            labels,
                            variant,
                            eval: self.eval_subset(labels, variant, tiles),
                        },
                    ));
                }
            }
        }
        out
    }

    /// Fig. 13: confusion matrices for both models over the three
    /// conditions (cloudy-shadowy originals, cloud-shadow-removed,
    /// cloud-shadow-free).
    pub fn fig13(&mut self) -> Vec<(LabelSource, &'static str, ArmEvaluation)> {
        let cloudy: Vec<Tile> = self
            .dataset
            .validation
            .iter()
            .filter(|t| t.is_cloudy())
            .cloned()
            .collect();
        let all = self.dataset.validation.clone();
        let mut out = Vec::new();
        for labels in [LabelSource::Manual, LabelSource::Auto] {
            if !cloudy.is_empty() {
                out.push((
                    labels,
                    "cloudy-shadowy",
                    self.eval_subset(labels, InputVariant::Original, &cloudy),
                ));
                out.push((
                    labels,
                    "cloud-shadow-removed",
                    self.eval_subset(labels, InputVariant::Filtered, &cloudy),
                ));
            }
            out.push((
                labels,
                "cloud-shadow-free",
                self.eval_subset(labels, InputVariant::Clean, &all),
            ));
        }
        out
    }
}

/// Renders Table IV in the paper's layout.
pub fn render_table4(cells: &[AccuracyCell]) -> String {
    let pick = |l: LabelSource, v: InputVariant| {
        cells
            .iter()
            .find(|c| c.labels == l && c.variant == v)
            .map(|c| c.eval.report.accuracy * 100.0)
            .unwrap_or(f64::NAN)
    };
    let mut s = String::new();
    s.push_str("TABLE IV: U-Net sea-ice classification accuracy (paper values in parentheses)\n");
    s.push_str(&format!(
        "Original S2 images                      | U-Net-Man {:>6.2}% (91.39%) | U-Net-Auto {:>6.2}% (90.18%)\n",
        pick(LabelSource::Manual, InputVariant::Original),
        pick(LabelSource::Auto, InputVariant::Original)
    ));
    s.push_str(&format!(
        "S2 images, thin cloud/shadow filtered   | U-Net-Man {:>6.2}% (98.40%) | U-Net-Auto {:>6.2}% (98.97%)\n",
        pick(LabelSource::Manual, InputVariant::Filtered),
        pick(LabelSource::Auto, InputVariant::Filtered)
    ));
    for c in cells {
        s.push_str(&format!(
            "  {:?}/{:?}: {}\n",
            c.labels,
            c.variant,
            c.eval.report.summary()
        ));
    }
    s
}

/// Renders Table V in the paper's layout.
pub fn render_table5(rows: &[(bool, AccuracyCell)]) -> String {
    let pick = |cloudy: bool, l: LabelSource, v: InputVariant| {
        rows.iter()
            .find(|(c, cell)| *c == cloudy && cell.labels == l && cell.variant == v)
            .map(|(_, cell)| cell.eval.report.accuracy * 100.0)
            .unwrap_or(f64::NAN)
    };
    let mut s = String::new();
    s.push_str(
        "TABLE V: validation accuracy by cloud/shadow coverage (paper values in parentheses)\n",
    );
    s.push_str(&format!(
        "> ~10% cover, original images | U-Net-Man {:>6.2}% (88.74%) | U-Net-Auto {:>6.2}% (79.91%)\n",
        pick(true, LabelSource::Manual, InputVariant::Original),
        pick(true, LabelSource::Auto, InputVariant::Original)
    ));
    s.push_str(&format!(
        "> ~10% cover, filtered images | U-Net-Man {:>6.2}% (98.91%) | U-Net-Auto {:>6.2}% (99.28%)\n",
        pick(true, LabelSource::Manual, InputVariant::Filtered),
        pick(true, LabelSource::Auto, InputVariant::Filtered)
    ));
    s.push_str(&format!(
        "< ~10% cover, original images | U-Net-Man {:>6.2}% (92.27%) | U-Net-Auto {:>6.2}% (93.60%)\n",
        pick(false, LabelSource::Manual, InputVariant::Original),
        pick(false, LabelSource::Auto, InputVariant::Original)
    ));
    s.push_str(&format!(
        "< ~10% cover, filtered images | U-Net-Man {:>6.2}% (98.23%) | U-Net-Auto {:>6.2}% (98.87%)\n",
        pick(false, LabelSource::Manual, InputVariant::Filtered),
        pick(false, LabelSource::Auto, InputVariant::Filtered)
    ));
    s
}

/// Fig. 11 / §IV-B-2: SSIM of auto-labels against manual labels, with and
/// without the thin-cloud/shadow filter (paper: 89 % and 99.64 %).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig11 {
    /// Mean SSIM of auto-labels from original (contaminated) imagery.
    pub ssim_original: f64,
    /// Mean SSIM of auto-labels from filtered imagery.
    pub ssim_filtered: f64,
    /// Tiles scored.
    pub tiles: usize,
}

/// Runs the Fig. 11 SSIM experiment over the validation split's cloudy
/// tiles.
pub fn fig11(scale: Scale) -> Fig11 {
    let (scenes, scene, tile, _) = scale.accuracy_dataset();
    let cfg = WorkflowConfig::scaled(scenes, scene, tile, 1);
    let dataset = Dataset::build(cfg.dataset.clone());
    let unfiltered = AutoLabelConfig::unfiltered();
    let filtered = AutoLabelConfig::filtered_for_tile(tile);

    let mut sum_orig = 0f64;
    let mut sum_filt = 0f64;
    let mut n = 0usize;
    for t in dataset.validation.iter().filter(|t| t.is_cloudy()) {
        let manual = seaice_label::segment::segment_to_color(&t.truth);
        let lab_orig = auto_label(&t.rgb, &unfiltered).color_label;
        let lab_filt = auto_label(&t.rgb, &filtered).color_label;
        sum_orig += ssim_rgb(&lab_orig, &manual);
        sum_filt += ssim_rgb(&lab_filt, &manual);
        n += 1;
    }
    assert!(n > 0, "no cloudy validation tiles at this scale");
    Fig11 {
        ssim_original: sum_orig / n as f64,
        ssim_filtered: sum_filt / n as f64,
        tiles: n,
    }
}

impl Fig11 {
    /// Renders the result line.
    pub fn render(&self) -> String {
        format!(
            "FIG 11 / §IV-B: auto-label SSIM vs manual labels over {} cloudy tiles\n  original imagery: {:.2}% (paper: 89%)\n  filtered imagery: {:.2}% (paper: 99.64%)\n",
            self.tiles,
            self.ssim_original * 100.0,
            self.ssim_filtered * 100.0
        )
    }
}

/// §IV-B timing: auto-labeling large scenes end to end (paper: 349.26 s
/// for 66 scenes of 2048²).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenesTiming {
    /// Scenes processed.
    pub scenes: usize,
    /// Scene side in pixels.
    pub scene_size: usize,
    /// Measured seconds on this host.
    pub measured_secs: f64,
    /// Extrapolation to the paper's 66×2048² workload at this host's
    /// measured per-pixel rate.
    pub paper_workload_secs: f64,
}

/// Runs the scene-labeling timing experiment.
pub fn scenes_timing(scale: Scale) -> ScenesTiming {
    let (n, side) = match scale {
        Scale::Small => (2usize, 256usize),
        Scale::Medium => (4, 512),
        Scale::Large => (8, 1024),
    };
    let cfg = AutoLabelConfig::filtered_for_tile(side);
    let scenes: Vec<_> = (0..n)
        .map(|i| {
            let sc = seaice_s2::synth::generate(
                &seaice_s2::synth::SceneConfig {
                    width: side,
                    height: side,
                    ..seaice_s2::synth::SceneConfig::tiny(side)
                },
                0x5CE7E + i as u64,
            );
            sc.rgb
        })
        .collect();
    let t0 = std::time::Instant::now();
    for s in &scenes {
        std::hint::black_box(auto_label(s, &cfg));
    }
    let measured = t0.elapsed().as_secs_f64();
    let px_done = (n * side * side) as f64;
    let paper_px = 66.0 * 2048.0 * 2048.0;
    ScenesTiming {
        scenes: n,
        scene_size: side,
        measured_secs: measured,
        paper_workload_secs: measured / px_done * paper_px,
    }
}

impl ScenesTiming {
    /// Renders the result line.
    pub fn render(&self) -> String {
        format!(
            "SCENE LABELING (§IV-B): {} scenes of {}x{} in {:.2}s; extrapolated 66x2048² workload: {:.1}s (paper: 349.26s)\n",
            self.scenes, self.scene_size, self.scene_size, self.measured_secs, self.paper_workload_secs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_filter_improves_ssim() {
        let f = fig11(Scale::Small);
        assert!(
            f.ssim_filtered > f.ssim_original,
            "filtered {:.3} must beat original {:.3}",
            f.ssim_filtered,
            f.ssim_original
        );
        assert!(
            f.ssim_filtered - f.ssim_original > 0.02,
            "filter must add several SSIM points: {:.3} vs {:.3}",
            f.ssim_filtered,
            f.ssim_original
        );
        assert!(
            f.ssim_filtered > 0.75,
            "filtered SSIM {:.3}",
            f.ssim_filtered
        );
    }

    #[test]
    fn scenes_timing_extrapolates() {
        let t = scenes_timing(Scale::Small);
        assert!(t.measured_secs > 0.0);
        assert!(t.paper_workload_secs > t.measured_secs);
    }

    #[test]
    fn accuracy_tables_have_the_right_shape() {
        let mut exp = prepare(Scale::Small);
        let t4 = exp.table4();
        assert_eq!(t4.len(), 4);
        // Filtering must help both models (the paper's headline claim).
        let acc = |l: LabelSource, v: InputVariant| {
            t4.iter()
                .find(|c| c.labels == l && c.variant == v)
                .unwrap()
                .eval
                .report
                .accuracy
        };
        assert!(
            acc(LabelSource::Manual, InputVariant::Filtered)
                > acc(LabelSource::Manual, InputVariant::Original)
        );
        assert!(
            acc(LabelSource::Auto, InputVariant::Filtered)
                > acc(LabelSource::Auto, InputVariant::Original)
        );

        let t5 = exp.table5();
        assert!(!t5.is_empty());
        let f13 = exp.fig13();
        assert!(f13.len() >= 2);
        for (_, _, e) in &f13 {
            // Column-normalized columns sum to 1 (or 0 for absent class).
            let norm = e.confusion.column_normalized();
            for t in 0..3usize {
                let s: f64 = norm.iter().take(3).map(|row| row[t]).sum();
                assert!(s < 1.0 + 1e-9);
            }
        }
    }
}
