//! Experiment scale presets. The paper's full scale (66 scenes of 2048²,
//! 4224 tiles of 256², 50-epoch depth-5 U-Net) is out of reach for a
//! single-core CPU session; each experiment runs at a chosen scale and
//! prints the factor relative to the paper.

use serde::{Deserialize, Serialize};

/// How big to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds per experiment; CI-sized.
    Small,
    /// Tens of seconds; the default for `reproduce`.
    Medium,
    /// Minutes; closest shapes to the paper.
    Large,
}

impl Scale {
    /// Parses `small` / `medium` / `large` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" | "s" => Some(Scale::Small),
            "medium" | "m" => Some(Scale::Medium),
            "large" | "l" => Some(Scale::Large),
            _ => None,
        }
    }

    /// Number of tiles for the auto-labeling speed experiments (paper:
    /// 4224). Per-tile cost is measured for real; the count only affects
    /// measurement noise.
    pub fn label_tiles(self) -> usize {
        match self {
            Scale::Small => 64,
            Scale::Medium => 256,
            Scale::Large => 1056,
        }
    }

    /// Tile side for the auto-labeling speed experiments (paper: 256).
    pub fn label_tile_size(self) -> usize {
        match self {
            Scale::Small => 64,
            Scale::Medium => 128,
            Scale::Large => 256,
        }
    }

    /// (scenes, scene side, tile side, epochs) for the accuracy
    /// experiments (paper: 66, 2048, 256, 50).
    pub fn accuracy_dataset(self) -> (usize, usize, usize, usize) {
        match self {
            Scale::Small => (4, 256, 32, 10),
            Scale::Medium => (8, 256, 32, 14),
            Scale::Large => (16, 512, 64, 20),
        }
    }

    /// (scenes, scene side, tile side, passes, closed-loop clients) for
    /// the serving load generator. Multiple passes over the same scene
    /// archive model an operational re-analysis workload — the regime
    /// where the serving engine's prediction cache pays off.
    pub fn serve_workload(self) -> (usize, usize, usize, usize, usize) {
        match self {
            Scale::Small => (2, 48, 16, 3, 4),
            Scale::Medium => (4, 96, 32, 3, 8),
            Scale::Large => (8, 192, 32, 4, 16),
        }
    }

    /// (map-reduce items, training samples, serve tiles) for the chaos
    /// demonstration: every layer runs under a seeded kill and must
    /// recover with byte-identical results.
    pub fn chaos_workload(self) -> (usize, usize, usize) {
        match self {
            Scale::Small => (64, 12, 8),
            Scale::Medium => (256, 18, 24),
            Scale::Large => (1024, 24, 64),
        }
    }

    /// (regions, revisits, scene side, tile side, workers) for the
    /// streaming DAG workload: several monitored regions revisited at a
    /// fixed cadence, flowing through catalog → tile → label → infer →
    /// change-detect.
    pub fn stream_workload(self) -> (usize, u32, usize, usize, usize) {
        match self {
            Scale::Small => (2, 4, 64, 16, 2),
            Scale::Medium => (3, 6, 96, 32, 3),
            Scale::Large => (4, 10, 192, 32, 4),
        }
    }

    /// (durable, stream, mapreduce, serve) schedule counts for the
    /// chaos-soak harness: K seeded random fault schedules whose every
    /// outcome is checked against a precomputed oracle or a fault-free
    /// reference.
    pub fn soak_schedules(self) -> (usize, usize, usize, usize) {
        match self {
            Scale::Small => (8, 4, 4, 4),
            Scale::Medium => (16, 6, 6, 6),
            Scale::Large => (32, 8, 8, 8),
        }
    }

    /// Ranks for the real distributed-training semantics run.
    pub fn distrib_ranks(self) -> usize {
        match self {
            Scale::Small => 2,
            Scale::Medium => 4,
            Scale::Large => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("M"), Some(Scale::Medium));
        assert_eq!(Scale::parse("l"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Small.label_tiles() < Scale::Medium.label_tiles());
        assert!(Scale::Medium.label_tiles() < Scale::Large.label_tiles());
        let (s, ..) = Scale::Small.accuracy_dataset();
        let (l, ..) = Scale::Large.accuracy_dataset();
        assert!(s < l);
    }
}
