//! Table II — PySpark-style map-reduce auto-labeling over the
//! {1,2,4} × {1,2,4} executor/core grid of a Dataproc cluster.
//!
//! Each grid point runs the real mini-map-reduce engine (load → lazy map
//! UDF → collect): worker threads execute the full auto-label pipeline,
//! and the engine's cost model turns measured per-task costs plus the
//! calibrated object-store/cluster parameters into simulated load / map /
//! reduce times. The paper's per-tile node cost (390 s over 4224 tiles)
//! replaces this host's per-tile cost via `compute_scale`, so the
//! absolute rows are comparable to the publication.

use crate::scale::Scale;
use crate::workloads::{labeling_tiles, measure_per_tile_cost};
use seaice_imgproc::buffer::Image;
use seaice_label::autolabel::{auto_label, AutoLabelConfig};
use seaice_mapreduce::{ClusterSpec, CostModel, Session};
use serde::{Deserialize, Serialize};

/// One row of Table II.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Table2Row {
    /// Executor count.
    pub executors: usize,
    /// Cores per executor.
    pub cores: usize,
    /// Simulated load seconds.
    pub load_secs: f64,
    /// Simulated map-registration seconds.
    pub map_secs: f64,
    /// Simulated reduce seconds.
    pub reduce_secs: f64,
    /// Load speedup vs the 1×1 row.
    pub load_speedup: f64,
    /// Reduce speedup vs the 1×1 row.
    pub reduce_speedup: f64,
}

/// Complete Table II result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2 {
    /// Tiles processed per grid point.
    pub tiles: usize,
    /// Tile side in pixels.
    pub tile_size: usize,
    /// The grid rows, in the paper's order.
    pub rows: Vec<Table2Row>,
}

/// The paper's row order.
pub const GRID: [(usize, usize); 9] = [
    (1, 1),
    (1, 2),
    (1, 4),
    (2, 1),
    (2, 2),
    (2, 4),
    (4, 1),
    (4, 2),
    (4, 4),
];

/// The paper's published (load, reduce) seconds, same order as [`GRID`].
pub const PAPER_LOAD_REDUCE: [(f64, f64); 9] = [
    (108.0, 390.0),
    (58.0, 174.0),
    (33.0, 72.0),
    (56.0, 156.0),
    (31.0, 84.0),
    (19.0, 41.0),
    (31.0, 78.0),
    (17.0, 39.0),
    (12.0, 24.0),
];

fn run_grid_point(
    tiles: &[Image<u8>],
    spec: ClusterSpec,
    cost: CostModel,
    tile_bytes: f64,
) -> (f64, f64, f64) {
    let session = Session::new(spec, cost);
    let (df, load) = session.read(tiles.to_vec(), tile_bytes);
    let side = tiles[0].width();
    let (lazy, map) = df.map(&session, move |img: Image<u8>| {
        auto_label(&img, &AutoLabelConfig::filtered_for_tile(side))
            .class_mask
            .into_vec()
    });
    let (results, reduce) = lazy.collect(&session, tile_bytes / 3.0);
    assert_eq!(results.len(), tiles.len());
    (
        load.simulated_secs,
        map.simulated_secs,
        reduce.simulated_secs,
    )
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Table2 {
    let n = scale.label_tiles();
    let side = scale.label_tile_size();
    let tiles = labeling_tiles(n, side, 0x7AB1E2);

    // Scale simulated task costs so the paper's workload intensity is
    // reproduced: the paper's single-slot reduce took 390 s for 4224
    // tiles (~92 ms of N2-node time per 256² tile); express our measured
    // per-tile cost in those units, adjusting for tile area.
    let host_per_tile = measure_per_tile_cost(&tiles[..tiles.len().min(16)]);
    // One local tile stands for one paper tile in cost units (~92 ms of
    // N2-node time each); the row total is then rescaled by 4224/n below.
    // A fixed per-task cost (rather than compute_scale on measured wall
    // times) keeps the simulation honest on oversubscribed hosts; the
    // measured host cost is still reported for calibration transparency.
    let paper_per_tile = 390.0 / 4224.0;
    let mut cost = CostModel::gcd_n2();
    cost.compute_scale = paper_per_tile / host_per_tile;
    cost.fixed_task_cost_secs = Some(paper_per_tile);

    // Each of our n tiles stands for 4224/n paper tiles of 256²×3 bytes,
    // so the simulated load moves the paper's full ~830 MB regardless of
    // the local scale.
    let tile_bytes = 256.0 * 256.0 * 3.0 * 4224.0 / n as f64;

    // The paper collects 4224 class masks (~277 MB) at the driver.
    let paper_tasks = vec![paper_per_tile; 4224];
    let paper_result_bytes = 4224.0 * 256.0 * 256.0;

    let mut rows = Vec::with_capacity(GRID.len());
    let mut base: Option<(f64, f64)> = None;
    for &(e, c) in &GRID {
        let spec = ClusterSpec::new(e, c).expect("grid specs are positive");
        // Execute the real engine at local scale (verifies results; its
        // own report is consistent but covers n tasks, not 4224).
        let (load, map, _engine_reduce) = run_grid_point(&tiles, spec, cost, tile_bytes);
        // Report the reduce stage at the paper's full task count through
        // the same cost model the engine uses.
        let reduce = cost.reduce_time(&spec, &paper_tasks, paper_result_bytes);
        let (l0, r0) = *base.get_or_insert((load, reduce));
        rows.push(Table2Row {
            executors: e,
            cores: c,
            load_secs: load,
            map_secs: map,
            reduce_secs: reduce,
            load_speedup: l0 / load,
            reduce_speedup: r0 / reduce,
        });
    }
    Table2 {
        tiles: n,
        tile_size: side,
        rows,
    }
}

impl Table2 {
    /// The `BENCH_mapreduce.json` perf-trajectory summary. Every metric
    /// is a *simulated* cost from the calibrated cluster model — the
    /// load bytes and reduce task set are pinned at the paper's full
    /// workload at every scale, so the values are deterministic and
    /// scale-independent; tight tolerances catch any cost-model drift.
    /// (Map registration is excluded: it is the one row term derived
    /// from measured wall time.)
    pub fn summary(&self) -> seaice_obs::bench::Summary {
        let first = &self.rows[0];
        let last = self.rows.last().expect("the grid is never empty");
        seaice_obs::bench::Summary::new("mapreduce")
            .metric("load_secs_1x1", first.load_secs, "s", false, 0.05)
            .metric("load_secs_4x4", last.load_secs, "s", false, 0.05)
            .metric("reduce_secs_1x1", first.reduce_secs, "s", false, 0.05)
            .metric("reduce_secs_4x4", last.reduce_secs, "s", false, 0.05)
            .metric("load_speedup_4x4", last.load_speedup, "x", true, 0.05)
            .metric("reduce_speedup_4x4", last.reduce_speedup, "x", true, 0.05)
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "TABLE II: PySpark-style auto-labeling over the simulated GCD cluster ({} tiles of {}x{}, costs in paper-workload units)\n",
            self.tiles, self.tile_size, self.tile_size
        ));
        s.push_str(
            "exec | cores | load s (paper) | map s | reduce s (paper) | speedup load | speedup reduce\n",
        );
        for (r, &(pl, pr)) in self.rows.iter().zip(&PAPER_LOAD_REDUCE) {
            s.push_str(&format!(
                "{:>4} | {:>5} | {:>7.1} ({:>5.1}) | {:>5.2} | {:>9.1} ({:>5.1}) | {:>12.2} | {:>14.2}\n",
                r.executors,
                r.cores,
                r.load_secs,
                pl,
                r.map_secs,
                r.reduce_secs,
                pr,
                r.load_speedup,
                r.reduce_speedup
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_matches_paper() {
        let t = run(Scale::Small);
        assert_eq!(t.rows.len(), 9);
        let last = t.rows.last().unwrap();
        assert_eq!((last.executors, last.cores), (4, 4));
        // Headline shapes: ~9× load and ~16× reduce at 4×4.
        assert!(
            (7.5..=12.5).contains(&last.load_speedup),
            "load speedup {:.2}",
            last.load_speedup
        );
        assert!(
            (13.0..=18.0).contains(&last.reduce_speedup),
            "reduce speedup {:.2}",
            last.reduce_speedup
        );
        // Map stays constant and tiny.
        assert!(t.rows.iter().all(|r| r.map_secs < 1.0));
        // Reduce absolute values track the paper within 45 %. (The
        // paper's middle rows are *superlinear* — 4 cores gave 5.42x —
        // which a work-conserving scheduler cannot produce; its 1x1 and
        // 4x4 endpoints are mutually consistent with linear scaling and
        // match tightly.)
        for (r, &(_, pr)) in t.rows.iter().zip(&PAPER_LOAD_REDUCE) {
            let rel = (r.reduce_secs - pr).abs() / pr;
            assert!(
                rel < 0.45,
                "{}x{} reduce {:.1}s vs paper {pr}s",
                r.executors,
                r.cores,
                r.reduce_secs
            );
        }
    }
}
