//! serve-bench — the load generator for the `seaice-serve` engine.
//!
//! Three rows, one workload: a scene archive classified `passes` times
//! over (the operational re-analysis regime — monitoring products are
//! regenerated whenever thresholds or models are recalibrated, but most
//! tiles have not changed).
//!
//! * **sequential** — `core::classify_scene` in a loop: the pre-serving
//!   baseline; every pass recomputes every tile.
//! * **engine closed-loop** — `clients` threads drive whole scenes
//!   through the engine with backpressure (`submit_blocking`); repeat
//!   passes hit the LRU prediction cache, and the outputs are checked
//!   bit-for-bit against the sequential baseline.
//! * **engine open-loop** — fixed-rate arrivals at ~3× the measured
//!   single-worker capacity against a deliberately small queue
//!   (`try_submit`): demonstrates admission control shedding with
//!   `Overloaded` instead of collapsing.
//!
//! All timings are **measured** on this host. On a single-core session
//! the engine cannot beat the baseline on raw first-pass compute; its win
//! is the cache on passes 2+, which the table reports honestly via the
//! hit-rate column.

use crate::scale::Scale;
use seaice_imgproc::buffer::Image;
use seaice_metrics::latency::{LatencyHistogram, LatencySnapshot};
use seaice_s2::synth::{generate, SceneConfig};
use seaice_s2::tiler::tile_anchors;
use seaice_serve::engine::{Engine, EngineConfig, ServeError};
use seaice_serve::scene::classify_scene_engine;
use seaice_unet::checkpoint::{snapshot, Checkpoint};
use seaice_unet::{InferBackend, UNet, UNetConfig};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Load-generator parameters (see [`Scale::serve_workload`]).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ServeBenchConfig {
    /// Distinct scenes in the archive.
    pub scenes: usize,
    /// Scene side in pixels.
    pub scene_side: usize,
    /// Tile side the model serves.
    pub tile_size: usize,
    /// Passes over the archive (pass 1 is cold, passes 2+ cacheable).
    pub passes: usize,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Forward implementation for both the baseline and the engine rows.
    pub backend: InferBackend,
}

impl ServeBenchConfig {
    /// The preset workload for `scale` (f32 backend).
    pub fn from_scale(scale: Scale) -> Self {
        let (scenes, scene_side, tile_size, passes, clients) = scale.serve_workload();
        Self {
            scenes,
            scene_side,
            tile_size,
            passes,
            clients,
            backend: InferBackend::F32,
        }
    }
}

/// One row of the serve-bench table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeBenchRow {
    /// Which driver produced the row.
    pub mode: String,
    /// Tile requests answered.
    pub requests: u64,
    /// Wall-clock seconds for the whole row.
    pub wall_secs: f64,
    /// Answered requests per second.
    pub throughput_rps: f64,
    /// Median per-request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Prediction-cache hit rate over the row (0 for the baseline).
    pub cache_hit_rate: f64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Mean micro-batch size (1 for the baseline).
    pub mean_batch_size: f64,
}

/// Complete serve-bench result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeBench {
    /// The workload that was driven.
    pub cfg: ServeBenchConfig,
    /// Tiles per pass over the archive.
    pub tiles_per_pass: usize,
    /// Offered arrival rate of the open-loop row, requests/s.
    pub offered_rps: f64,
    /// Did every engine-classified scene match the sequential baseline
    /// bit for bit?
    pub bit_identical: bool,
    /// sequential, engine closed-loop, engine open-loop.
    pub rows: Vec<ServeBenchRow>,
}

/// The serving model: small enough to drive thousands of requests in a
/// bench run, real enough to exercise the full engine path.
fn bench_checkpoint(tile_size: usize) -> Checkpoint {
    let cfg = UNetConfig {
        depth: 1,
        base_filters: 4,
        dropout: 0.0,
        seed: 0x5EA1CE,
        ..UNetConfig::paper()
    };
    cfg.assert_input_side(tile_size);
    snapshot(&mut UNet::new(cfg))
}

fn row(
    mode: &str,
    requests: u64,
    wall: Duration,
    lat: &LatencySnapshot,
    cache_hit_rate: f64,
    shed: u64,
    mean_batch_size: f64,
) -> ServeBenchRow {
    let wall_secs = wall.as_secs_f64();
    ServeBenchRow {
        mode: mode.to_string(),
        requests,
        wall_secs,
        throughput_rps: if wall_secs > 0.0 {
            requests as f64 / wall_secs
        } else {
            0.0
        },
        p50_ms: lat.p50_us as f64 / 1e3,
        p95_ms: lat.p95_us as f64 / 1e3,
        p99_ms: lat.p99_us as f64 / 1e3,
        cache_hit_rate,
        shed,
        mean_batch_size,
    }
}

/// Runs the preset workload for `scale`.
pub fn run(scale: Scale) -> ServeBench {
    run_config(ServeBenchConfig::from_scale(scale))
}

/// Runs an explicit workload.
pub fn run_config(cfg: ServeBenchConfig) -> ServeBench {
    let ckpt = bench_checkpoint(cfg.tile_size);
    let scene_rgbs: Vec<Image<u8>> = (0..cfg.scenes)
        .map(|i| generate(&SceneConfig::tiny(cfg.scene_side), 4000 + i as u64).rgb)
        .collect();
    let anchors = tile_anchors(cfg.scene_side, cfg.tile_size).len();
    let tiles_per_scene = anchors * anchors;
    let tiles_per_pass = tiles_per_scene * cfg.scenes;
    let mut rows = Vec::with_capacity(3);

    // --- Row 1: sequential classify_scene baseline -----------------------
    // Per-tile latency is attributed as scene wall time / tiles per scene
    // (classify_scene is monolithic), so the distribution is across
    // scenes and passes rather than individual tiles.
    let mut model = seaice_core::restore_backend(&ckpt, cfg.backend, cfg.tile_size)
        .expect("bench checkpoint must restore on the requested backend");
    let mut seq_hist = LatencyHistogram::new();
    let mut baseline = Vec::with_capacity(cfg.scenes);
    let t0 = Instant::now();
    for pass in 0..cfg.passes {
        for rgb in &scene_rgbs {
            let s0 = Instant::now();
            let result = seaice_core::classify_scene_with(&mut model, rgb, cfg.tile_size, false);
            let per_tile_us =
                (s0.elapsed().as_secs_f64() / tiles_per_scene as f64 * 1e6).round() as u64;
            for _ in 0..tiles_per_scene {
                seq_hist.record_us(per_tile_us);
            }
            if pass == 0 {
                baseline.push(result);
            }
        }
    }
    let seq_wall = t0.elapsed();
    let seq_requests = (cfg.passes * tiles_per_pass) as u64;
    rows.push(row(
        "sequential",
        seq_requests,
        seq_wall,
        &seq_hist.snapshot(),
        0.0,
        0,
        1.0,
    ));

    // --- Row 2: engine, closed loop --------------------------------------
    // `clients` threads pull (pass, scene) work items and stream whole
    // scenes through the engine with backpressure; the cache holds every
    // distinct tile, so passes 2+ skip the forward pass.
    let engine = Engine::new(
        &ckpt,
        EngineConfig {
            max_batch_size: 8,
            max_wait: Duration::from_millis(1),
            queue_capacity: 256,
            cache_capacity: 2 * tiles_per_pass,
            filter: false,
            backend: cfg.backend,
            ..EngineConfig::for_tile(cfg.tile_size)
        },
    )
    .expect("bench engine config");
    let mismatches = AtomicUsize::new(0);
    let t0 = Instant::now();
    // Passes are separated by a barrier: a re-analysis pass starts after
    // the previous product generation finished (and its tiles are
    // resident in the cache). Within a pass, scenes fan out to clients.
    for _pass in 0..cfg.passes {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..cfg.clients {
                scope.spawn(|| loop {
                    let scene_idx = next.fetch_add(1, Ordering::Relaxed);
                    if scene_idx >= cfg.scenes {
                        break;
                    }
                    let got = classify_scene_engine(&engine, &scene_rgbs[scene_idx])
                        .expect("engine closed mid-bench");
                    if got.mask != baseline[scene_idx].mask {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
    }
    let closed_wall = t0.elapsed();
    let stats = engine.stats();
    engine.shutdown();
    rows.push(row(
        "engine closed-loop",
        stats.ok,
        closed_wall,
        &stats.latency,
        stats.cache_hit_rate,
        stats.shed,
        stats.mean_batch_size,
    ));
    let bit_identical = mismatches.load(Ordering::Relaxed) == 0;

    // --- Row 3: engine, open loop ----------------------------------------
    // Fixed-interval arrivals at ~3× the measured per-tile capacity of
    // one worker, against a short queue with the cache disabled: the
    // engine must shed rather than queue without bound.
    let per_tile_secs = seq_wall.as_secs_f64() / seq_requests as f64;
    let engine = Engine::new(
        &ckpt,
        EngineConfig {
            workers: 1,
            max_batch_size: 8,
            max_wait: Duration::from_millis(1),
            queue_capacity: 8,
            cache_capacity: 0,
            filter: false,
            backend: cfg.backend,
            ..EngineConfig::for_tile(cfg.tile_size)
        },
    )
    .expect("bench engine config");
    let tiles: Vec<Image<u8>> = scene_rgbs
        .iter()
        .flat_map(|rgb| {
            let anchors = tile_anchors(cfg.scene_side, cfg.tile_size);
            let mut cut = Vec::with_capacity(tiles_per_scene);
            for &y0 in &anchors {
                for &x0 in &anchors {
                    cut.push(rgb.crop(x0, y0, cfg.tile_size, cfg.tile_size));
                }
            }
            cut
        })
        .collect();
    let arrivals = (cfg.passes * tiles_per_pass).clamp(64, 512);
    let offered_rps = 3.0 / per_tile_secs;
    let interval = Duration::from_secs_f64(per_tile_secs / 3.0);
    let t0 = Instant::now();
    let mut next_arrival = t0;
    let mut tickets = Vec::new();
    for i in 0..arrivals {
        let now = Instant::now();
        if next_arrival > now {
            std::thread::sleep(next_arrival - now);
        }
        next_arrival += interval;
        match engine.try_submit(tiles[i % tiles.len()].clone()) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded) => {} // counted by the engine
            Err(e) => panic!("unexpected open-loop error: {e}"),
        }
    }
    for t in tickets {
        t.wait().expect("accepted request must resolve");
    }
    let open_wall = t0.elapsed();
    let stats = engine.stats();
    engine.shutdown();
    rows.push(row(
        "engine open-loop",
        stats.ok,
        open_wall,
        &stats.latency,
        stats.cache_hit_rate,
        stats.shed,
        stats.mean_batch_size,
    ));

    ServeBench {
        cfg,
        tiles_per_pass,
        offered_rps,
        bit_identical,
        rows,
    }
}

impl ServeBench {
    /// The `BENCH_serve.json` perf-trajectory summary: the closed-loop
    /// engine row's throughput and tail latency (loose tolerances — a 2×
    /// move is a regression, host jitter is not), the cache hit rate, and
    /// the zero-tolerance bit-identity claim.
    pub fn summary(&self) -> seaice_obs::bench::Summary {
        let closed = &self.rows[1];
        seaice_obs::bench::Summary::new("serve")
            .metric(
                "closed_throughput_rps",
                closed.throughput_rps,
                "req/s",
                true,
                0.5,
            )
            .metric("closed_p99_ms", closed.p99_ms, "ms", false, 0.5)
            .metric(
                "cache_hit_rate",
                closed.cache_hit_rate,
                "fraction",
                true,
                0.1,
            )
            .metric(
                "bit_identical",
                if self.bit_identical { 1.0 } else { 0.0 },
                "bool",
                true,
                0.0,
            )
    }

    /// Renders the latency/throughput table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "SERVE BENCH: {} scenes of {}x{}, tile {} ({} tiles/pass), {} passes, {} clients, backend {}\n",
            self.cfg.scenes,
            self.cfg.scene_side,
            self.cfg.scene_side,
            self.cfg.tile_size,
            self.tiles_per_pass,
            self.cfg.passes,
            self.cfg.clients,
            self.cfg.backend
        ));
        s.push_str(
            "mode               |  reqs | wall s |  req/s | p50 ms | p95 ms | p99 ms | hit % | shed | batch\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:<18} | {:>5} | {:>6.2} | {:>6.1} | {:>6.2} | {:>6.2} | {:>6.2} | {:>5.1} | {:>4} | {:>5.2}\n",
                r.mode,
                r.requests,
                r.wall_secs,
                r.throughput_rps,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.cache_hit_rate * 100.0,
                r.shed,
                r.mean_batch_size
            ));
        }
        s.push_str(&format!(
            "open-loop offered rate: {:.1} req/s against 1 worker, queue 8, cache off\n",
            self.offered_rps
        ));
        s.push_str(&format!(
            "bit-identity vs sequential classify_scene: {}\n",
            if self.bit_identical { "OK" } else { "MISMATCH" }
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn servebench_small_meets_the_acceptance_bar() {
        let b = run(Scale::Small);
        assert_eq!(b.rows.len(), 3);
        assert!(b.bit_identical, "engine output diverged from sequential");

        let seq = &b.rows[0];
        let closed = &b.rows[1];
        let open = &b.rows[2];
        assert_eq!(seq.requests, closed.requests);
        // The cache makes repeat passes nearly free: the engine's
        // archive throughput must beat recompute-everything.
        assert!(
            closed.throughput_rps > seq.throughput_rps,
            "engine {:.1} req/s vs sequential {:.1} req/s",
            closed.throughput_rps,
            seq.throughput_rps
        );
        assert!(closed.cache_hit_rate > 0.5, "{}", closed.cache_hit_rate);
        // Overload at 3x capacity against a short queue must shed.
        assert!(open.shed > 0, "open loop never shed");
        for r in &b.rows {
            assert!(r.p50_ms <= r.p95_ms && r.p95_ms <= r.p99_ms, "{}", r.mode);
            assert!(r.throughput_rps > 0.0);
        }
        let table = b.render();
        assert!(table.contains("SERVE BENCH"));
        assert!(table.contains("bit-identity"));
    }
}
