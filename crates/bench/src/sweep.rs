//! Hyper-parameter sweep (§IV-A): "We have used the Adam optimizer,
//! batch sizes of 16, 32, and 64, dropouts of 0.1, 0.2, and 0.3 … to
//! observe the changes. Our U-Net models have a batch size of 32 … for
//! the results reported." This target repeats that exploration at CPU
//! scale: a (batch, dropout) grid of real training runs, evaluated on the
//! validation split.

use crate::scale::Scale;
use rayon::prelude::*;
use seaice_core::adapters::{tile_to_sample, InputVariant, LabelSource};
use seaice_core::WorkflowConfig;
use seaice_nn::dataloader::DataLoader;
use seaice_s2::dataset::Dataset;
use seaice_unet::{evaluate, train, UNet, UNetConfig};
use serde::{Deserialize, Serialize};

/// One sweep cell.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SweepRow {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Dropout rate.
    pub dropout: f32,
    /// Final training loss.
    pub train_loss: f32,
    /// Validation pixel accuracy.
    pub val_accuracy: f64,
    /// Training wall seconds.
    pub train_secs: f64,
}

/// Complete sweep result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sweep {
    /// Grid rows in (batch, dropout) order.
    pub rows: Vec<SweepRow>,
    /// Training tiles used.
    pub train_tiles: usize,
    /// Validation tiles used.
    pub val_tiles: usize,
    /// Epochs per run.
    pub epochs: usize,
}

/// Batch sizes swept (the paper's 16/32/64 scaled to the CPU workload).
pub const BATCHES: [usize; 3] = [4, 8, 16];

/// Dropout rates swept (as in the paper).
pub const DROPOUTS: [f32; 3] = [0.1, 0.2, 0.3];

/// Runs the sweep.
pub fn run(scale: Scale) -> Sweep {
    let (scenes, scene, tile, epochs) = scale.accuracy_dataset();
    let cfg = WorkflowConfig::scaled(scenes, scene, tile, epochs);
    let dataset = Dataset::build(cfg.dataset.clone());

    // Samples are shared across all runs (training inputs are filtered,
    // labels are the ground truth — the sweep isolates the optimizer
    // hyper-parameters).
    let train_samples: Vec<_> = dataset
        .train
        .par_iter()
        .map(|t| tile_to_sample(t, InputVariant::Filtered, LabelSource::Manual, &cfg.label))
        .collect();
    let val_samples: Vec<_> = dataset
        .validation
        .par_iter()
        .map(|t| tile_to_sample(t, InputVariant::Filtered, LabelSource::Manual, &cfg.label))
        .collect();

    let mut rows = Vec::new();
    for &batch in &BATCHES {
        for &dropout in &DROPOUTS {
            let unet = UNetConfig {
                dropout,
                ..cfg.unet
            };
            let mut model = UNet::new(unet);
            let loader = DataLoader::new(train_samples.clone(), batch, Some(11));
            let t0 = std::time::Instant::now();
            let report = train(&mut model, &loader, &cfg.train);
            let train_secs = t0.elapsed().as_secs_f64();
            let eval = evaluate(&mut model, &DataLoader::new(val_samples.clone(), 8, None));
            rows.push(SweepRow {
                batch_size: batch,
                dropout,
                train_loss: *report.epoch_losses.last().expect("epochs > 0"),
                val_accuracy: eval.accuracy,
                train_secs,
            });
        }
    }
    Sweep {
        rows,
        train_tiles: train_samples.len(),
        val_tiles: val_samples.len(),
        epochs: cfg.train.epochs,
    }
}

impl Sweep {
    /// Renders the sweep grid.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "HYPER-PARAMETER SWEEP (§IV-A): {} train / {} val tiles, {} epochs each\n",
            self.train_tiles, self.val_tiles, self.epochs
        ));
        s.push_str("batch | dropout | train loss | val accuracy | train s\n");
        for r in &self.rows {
            s.push_str(&format!(
                "{:>5} | {:>7.1} | {:>10.4} | {:>11.2}% | {:>7.1}\n",
                r.batch_size,
                r.dropout,
                r.train_loss,
                r.val_accuracy * 100.0,
                r.train_secs
            ));
        }
        let best = self
            .rows
            .iter()
            .max_by(|a, b| a.val_accuracy.total_cmp(&b.val_accuracy))
            .expect("nonempty sweep");
        s.push_str(&format!(
            "best: batch {} dropout {:.1} at {:.2}% (paper settled on batch 32, mid dropout)\n",
            best.batch_size,
            best.dropout,
            best.val_accuracy * 100.0
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep is expensive (9 real training runs); the unit test only
    /// checks a 1-cell degenerate grid path through the shared plumbing.
    #[test]
    fn sweep_rows_cover_the_grid() {
        assert_eq!(BATCHES.len() * DROPOUTS.len(), 9);
    }
}
