//! Table III / Fig. 12 — Horovod-style distributed U-Net training over
//! 1–8 GPUs of a DGX A100.
//!
//! Two components:
//!
//! * **semantics** — a *real* synchronous data-parallel training run
//!   (rank threads, ring all-reduce gradient averaging) at reduced scale,
//!   verifying losses match across widths;
//! * **timing** — the calibrated [`DgxA100Model`] produces the published
//!   table's four columns for every GPU count.

use crate::scale::Scale;
use seaice_distrib::{train_distributed, DgxA100Model, DistTrainConfig};
use seaice_nn::dataloader::Sample;
use seaice_s2::synth::{generate, SceneConfig};
use seaice_unet::UNetConfig;
use serde::{Deserialize, Serialize};

/// One row of Table III.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Table3Row {
    /// GPU count.
    pub gpus: usize,
    /// Simulated total training seconds (50 epochs).
    pub total_secs: f64,
    /// Simulated seconds per epoch.
    pub secs_per_epoch: f64,
    /// Simulated throughput, images per second.
    pub images_per_sec: f64,
    /// Simulated speedup vs one GPU.
    pub speedup: f64,
}

/// Complete Table III result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table3 {
    /// DGX rows (1, 2, 4, 6, 8 GPUs).
    pub rows: Vec<Table3Row>,
    /// Real-run check: per-epoch losses of the reduced distributed run.
    pub real_run_losses: Vec<f32>,
    /// Real-run ranks.
    pub real_run_ranks: usize,
    /// Real-run measured seconds on this host.
    pub real_run_measured_secs: f64,
}

/// The paper's published rows: (GPUs, total s, s/epoch, imgs/s, speedup).
pub const PAPER_ROWS: [(usize, f64, f64, f64, f64); 5] = [
    (1, 280.72, 5.5, 585.88, 1.00),
    (2, 142.98, 2.778, 1160.81, 1.96),
    (4, 74.09, 1.45, 2229.56, 3.79),
    (6, 51.56, 0.97, 3330.03, 5.44),
    (8, 38.91, 0.79, 4248.56, 7.21),
];

fn reduced_samples(n: usize, side: usize) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let scene = generate(&SceneConfig::tiny(side), 0xD15 + i as u64);
            let image = crate::table45::chw(&scene.rgb);
            Sample {
                image,
                mask: scene.truth.as_slice().to_vec(),
                channels: 3,
                height: side,
                width: side,
            }
        })
        .collect()
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Table3 {
    // Real semantics run at reduced scale.
    let ranks = scale.distrib_ranks();
    let samples = reduced_samples(ranks * 4, 16);
    let unet = UNetConfig {
        depth: 2,
        base_filters: 4,
        dropout: 0.0,
        seed: 99,
        ..UNetConfig::paper()
    };
    let (_, report) = train_distributed(
        unet,
        samples,
        DistTrainConfig {
            ranks,
            epochs: 3,
            batch_size_per_rank: 2,
            learning_rate: 1e-3,
            shuffle_seed: Some(5),
        },
        &DgxA100Model::dgx_a100(),
    );

    // Published-scale timing from the calibrated model.
    let model = DgxA100Model::dgx_a100();
    let rows = PAPER_ROWS
        .iter()
        .map(|&(gpus, ..)| Table3Row {
            gpus,
            total_secs: model.total_time(gpus, 50),
            secs_per_epoch: model.epoch_time(gpus),
            images_per_sec: model.images_per_sec(gpus),
            speedup: model.speedup(gpus),
        })
        .collect();

    Table3 {
        rows,
        real_run_losses: report.epoch_losses,
        real_run_ranks: ranks,
        real_run_measured_secs: report.measured_secs,
    }
}

impl Table3 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("TABLE III: Distributed U-Net training via ring all-reduce on the DGX A100 model (50 epochs, batch 32/GPU)\n");
        s.push_str("GPUs | time s (paper) | s/epoch (paper) | data/s (paper) | speedup (paper)\n");
        for (r, &(_, pt, pe, pd, ps)) in self.rows.iter().zip(&PAPER_ROWS) {
            s.push_str(&format!(
                "{:>4} | {:>7.2} ({:>6.2}) | {:>6.3} ({:>5.2}) | {:>7.0} ({:>7.2}) | {:>6.2} ({:>4.2})\n",
                r.gpus, r.total_secs, pt, r.secs_per_epoch, pe, r.images_per_sec, pd, r.speedup, ps
            ));
        }
        s.push_str(&format!(
            "real semantics run: {} ranks, losses {:?} ({:.1}s host wall)\n",
            self.real_run_ranks, self.real_run_losses, self.real_run_measured_secs
        ));
        s
    }

    /// Fig. 12's four series: `(gpus, speedup, imgs_per_sec, total, per_epoch)`.
    pub fn fig12_series(&self) -> Vec<(usize, f64, f64, f64, f64)> {
        self.rows
            .iter()
            .map(|r| {
                (
                    r.gpus,
                    r.speedup,
                    r.images_per_sec,
                    r.total_secs,
                    r.secs_per_epoch,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper_rows() {
        let t = run(Scale::Small);
        assert_eq!(t.rows.len(), 5);
        for (r, &(gpus, pt, _, pd, ps)) in t.rows.iter().zip(&PAPER_ROWS) {
            assert_eq!(r.gpus, gpus);
            assert!((r.total_secs - pt).abs() / pt < 0.05, "{gpus} GPUs total");
            assert!(
                (r.images_per_sec - pd).abs() / pd < 0.06,
                "{gpus} GPUs throughput"
            );
            assert!((r.speedup - ps).abs() < 0.3, "{gpus} GPUs speedup");
        }
        // The real run actually trained.
        assert_eq!(t.real_run_losses.len(), 3);
        assert!(t.real_run_losses[2] < t.real_run_losses[0]);
        assert!(t.render().contains("TABLE III"));
    }
}
