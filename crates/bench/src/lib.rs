//! # seaice-bench
//!
//! The experiment harness: one module per table/figure of the paper,
//! shared by the `reproduce` binary and the Criterion benches.
//!
//! ## How timing works here
//!
//! The paper's numbers come from hardware this session does not have (a
//! 4-core i5, a 4-node Dataproc cluster, an 8-GPU DGX A100). Every
//! experiment therefore reports two kinds of numbers, clearly labelled:
//!
//! * **measured** — real wall-clock on this host (meaningful for absolute
//!   per-task costs; parallel speedup is bounded by the host's cores);
//! * **simulated** — the discrete-event clock of `seaice-mapreduce` /
//!   the calibrated performance models of `seaice-distrib`, which combine
//!   per-task costs measured on this host with the published hardware
//!   characteristics. The *shapes* (speedup curves, crossovers, who wins)
//!   come from the models; see DESIGN.md §1 for the substitution
//!   rationale.
//!
//! Accuracy experiments (Tables IV–V, Figs. 11, 13, 14) involve no
//! hardware substitution: they run the real pipeline end to end at a
//! reduced scale and report real numbers.
#![forbid(unsafe_code)]

pub mod ablation;
pub mod chaosbench;
pub mod infer;
pub mod night;
pub mod scale;
pub mod servebench;
pub mod soakbench;
pub mod streambench;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table45;
pub mod workloads;

/// Serializes panic-hook swaps across the process: the hook is global,
/// so two chaos-style benches filtering concurrently would clobber each
/// other's saved hooks.
static PANIC_HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` with panics whose `String` payload contains `needle`
/// suppressed from stderr; every other panic still goes through the
/// previously installed hook. The chaos benches use this so their
/// expected injected panics don't spray backtraces over the output.
///
/// Hook swaps are serialized on a process-wide lock (concurrent
/// filtered sections would race each other's take/set), and the
/// previously installed hook — whatever it was, not the std default —
/// is restored afterwards, even if `f` itself panics.
pub fn with_suppressed_panics<R>(needle: &str, f: impl FnOnce() -> R) -> R {
    use std::panic::PanicHookInfo;
    use std::sync::Arc;

    type Hook = Arc<dyn Fn(&PanicHookInfo<'_>) + Send + Sync>;

    let _serial = PANIC_HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev: Hook = Arc::from(std::panic::take_hook());

    struct Restore(Option<Hook>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(prev) = self.0.take() {
                drop(std::panic::take_hook());
                std::panic::set_hook(Box::new(move |info| prev(info)));
            }
        }
    }
    let _restore = Restore(Some(Arc::clone(&prev)));

    let needle = needle.to_string();
    std::panic::set_hook(Box::new(move |info| {
        let suppressed = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains(&needle));
        if !suppressed {
            prev(info);
        }
    }));
    f()
}

/// Formats a seconds value compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.1}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.3}")
    }
}
