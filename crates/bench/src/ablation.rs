//! Ablation studies of the cloud/shadow filter's design choices
//! (DESIGN.md §6): each variant disables one mechanism and measures
//! auto-label accuracy against ground truth on contaminated scenes.

use crate::scale::Scale;
use seaice_imgproc::buffer::Image;
use seaice_label::cloudshadow::{CloudShadowFilter, FilterConfig};
use seaice_label::ranges::ClassRanges;
use seaice_label::segment::segment_classes;
use seaice_s2::dataset::{Dataset, DatasetConfig};
use serde::{Deserialize, Serialize};

/// One ablation arm.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant name.
    pub name: String,
    /// Mean auto-label accuracy over contaminated tiles.
    pub accuracy: f64,
}

/// Complete ablation result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ablation {
    /// Contaminated tiles evaluated.
    pub tiles: usize,
    /// Tile side in pixels.
    pub tile_size: usize,
    /// Baseline: segmentation accuracy with no filtering at all.
    pub unfiltered_accuracy: f64,
    /// The ablation arms, full filter first.
    pub rows: Vec<AblationRow>,
}

fn label_accuracy(filtered: &Image<u8>, truth: &Image<u8>) -> f64 {
    let mask = segment_classes(filtered, &ClassRanges::paper());
    let correct = mask
        .as_slice()
        .iter()
        .zip(truth.as_slice())
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / truth.as_slice().len() as f64
}

/// Runs the ablation over the cloudy validation tiles of the accuracy
/// dataset.
pub fn run(scale: Scale) -> Ablation {
    let (scenes, scene, tile, _) = scale.accuracy_dataset();
    let dataset = Dataset::build(DatasetConfig {
        keep_clean: false,
        ..DatasetConfig::scaled(scenes, scene, tile)
    });
    let tiles: Vec<_> = dataset
        .validation
        .iter()
        .chain(&dataset.train)
        .filter(|t| t.is_cloudy())
        .collect();
    assert!(!tiles.is_empty(), "no contaminated tiles at this scale");

    let base = FilterConfig::for_tile(tile);
    let variants: Vec<(&str, FilterConfig)> = vec![
        ("full filter", base),
        (
            "no shadow pass",
            FilterConfig {
                shadow_pass: false,
                ..base
            },
        ),
        (
            "no confidence blend (pooled only)",
            FilterConfig {
                confidence_blend: false,
                ..base
            },
        ),
        (
            "no shadow-plausibility exclusion",
            FilterConfig {
                shadow_exclusion: false,
                ..base
            },
        ),
        (
            "half smoothing radius",
            FilterConfig {
                smooth_radius: (base.smooth_radius / 2).max(1),
                ..base
            },
        ),
        (
            "quadruple smoothing radius",
            FilterConfig {
                smooth_radius: base.smooth_radius * 4,
                ..base
            },
        ),
        (
            "no denoise pre-filter",
            FilterConfig {
                denoise_radius: 0,
                ..base
            },
        ),
    ];

    let unfiltered_accuracy = tiles
        .iter()
        .map(|t| label_accuracy(&t.rgb, &t.truth))
        .sum::<f64>()
        / tiles.len() as f64;

    let rows = variants
        .into_iter()
        .map(|(name, cfg)| {
            let filter = CloudShadowFilter::new(cfg);
            let accuracy = tiles
                .iter()
                .map(|t| label_accuracy(&filter.apply(&t.rgb).filtered, &t.truth))
                .sum::<f64>()
                / tiles.len() as f64;
            AblationRow {
                name: name.to_string(),
                accuracy,
            }
        })
        .collect();

    Ablation {
        tiles: tiles.len(),
        tile_size: tile,
        unfiltered_accuracy,
        rows,
    }
}

impl Ablation {
    /// Renders the ablation table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "ABLATION: cloud/shadow-filter design choices ({} contaminated tiles of {}x{})\n",
            self.tiles, self.tile_size, self.tile_size
        ));
        s.push_str(&format!(
            "{:>38} | auto-label accuracy\n{:>38} | {:>8.2}%\n",
            "variant",
            "(unfiltered baseline)",
            self.unfiltered_accuracy * 100.0
        ));
        for r in &self.rows {
            s.push_str(&format!("{:>38} | {:>8.2}%\n", r.name, r.accuracy * 100.0));
        }
        s
    }
}

/// Decoder up-path ablation: the paper's literal 2×2 transposed
/// "up-convolution" vs the upsample+conv variant, trained identically.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UpModeAblation {
    /// Validation accuracy with upsample + 3×3 conv decoders.
    pub upsample_conv_accuracy: f64,
    /// Validation accuracy with transposed-convolution decoders.
    pub transposed_accuracy: f64,
    /// Parameter counts of the two variants.
    pub params: (usize, usize),
}

/// Trains both decoder variants on the same data and compares.
pub fn up_mode(scale: Scale) -> UpModeAblation {
    use seaice_core::adapters::{tile_to_sample, InputVariant, LabelSource};
    use seaice_core::WorkflowConfig;
    use seaice_nn::dataloader::DataLoader;
    use seaice_unet::{evaluate, train, UNet, UNetConfig, UpMode};

    let (scenes, scene, tile, epochs) = scale.accuracy_dataset();
    let cfg = WorkflowConfig::scaled(scenes, scene, tile, epochs);
    let dataset = Dataset::build(cfg.dataset.clone());
    let train_samples: Vec<_> = dataset
        .train
        .iter()
        .map(|t| tile_to_sample(t, InputVariant::Filtered, LabelSource::Manual, &cfg.label))
        .collect();
    let val_samples: Vec<_> = dataset
        .validation
        .iter()
        .map(|t| tile_to_sample(t, InputVariant::Filtered, LabelSource::Manual, &cfg.label))
        .collect();

    let run_one = |mode: UpMode| -> (f64, usize) {
        let mut model = UNet::new(UNetConfig {
            up_mode: mode,
            ..cfg.unet
        });
        let loader = DataLoader::new(train_samples.clone(), 8, Some(3));
        train(&mut model, &loader, &cfg.train);
        let eval = evaluate(&mut model, &DataLoader::new(val_samples.clone(), 8, None));
        (eval.accuracy, model.parameter_count())
    };
    let (up_acc, up_params) = run_one(UpMode::UpsampleConv);
    let (tr_acc, tr_params) = run_one(UpMode::Transposed);
    UpModeAblation {
        upsample_conv_accuracy: up_acc,
        transposed_accuracy: tr_acc,
        params: (up_params, tr_params),
    }
}

impl UpModeAblation {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "UP-CONVOLUTION ABLATION: decoder up-path variants (same data, same epochs)\n\
             {:>38} | {:>8.2}%  ({} params)\n{:>38} | {:>8.2}%  ({} params)\n",
            "upsample + 3x3 conv (default)",
            self.upsample_conv_accuracy * 100.0,
            self.params.0,
            "2x2 transposed conv (paper's up-conv)",
            self.transposed_accuracy * 100.0,
            self.params.1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_filter_wins_the_ablation() {
        let a = run(Scale::Small);
        let full = a.rows[0].accuracy;
        assert_eq!(a.rows[0].name, "full filter");
        assert!(
            full > a.unfiltered_accuracy,
            "filter must beat no filter: {full:.3} vs {:.3}",
            a.unfiltered_accuracy
        );
        // Each disabled mechanism must cost accuracy (ties allowed only
        // within noise for the radius variants).
        for r in &a.rows[1..4] {
            assert!(
                full >= r.accuracy - 1e-9,
                "'{}' unexpectedly beats the full filter: {:.3} vs {full:.3}",
                r.name,
                r.accuracy
            );
        }
        assert!(a.render().contains("ABLATION"));
    }
}
