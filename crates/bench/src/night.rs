//! Season-transfer experiment (§IV-B-2): the paper notes its summer
//! color limits break on Antarctic partial-night imagery and had to be
//! re-tuned manually. This target quantifies that failure and shows both
//! remedies shipped in `seaice-label::calibrate` — the analytic
//! illumination rescale and the automatic threshold calibrator fitted on
//! a single labeled reference scene.

use crate::scale::Scale;
use seaice_imgproc::buffer::Image;
use seaice_label::calibrate::calibrate;
use seaice_label::ranges::ClassRanges;
use seaice_label::segment::segment_classes;
use seaice_s2::synth::{generate, SceneConfig};
use serde::{Deserialize, Serialize};

/// Accuracy of each threshold strategy on held-out partial-night scenes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NightTransfer {
    /// Scenes evaluated.
    pub scenes: usize,
    /// Paper summer thresholds applied blindly.
    pub summer_accuracy: f64,
    /// Analytic `for_illumination(0.45)` rescale.
    pub rescaled_accuracy: f64,
    /// Thresholds fitted by [`calibrate`] on one labeled reference scene.
    pub calibrated_accuracy: f64,
    /// Fitted V cut points `(water_hi, thick_lo)`.
    pub fitted_cuts: (u8, u8),
}

fn accuracy(mask: &Image<u8>, truth: &Image<u8>) -> f64 {
    mask.as_slice()
        .iter()
        .zip(truth.as_slice())
        .filter(|(a, b)| a == b)
        .count() as f64
        / truth.as_slice().len() as f64
}

/// Runs the transfer experiment.
pub fn run(scale: Scale) -> NightTransfer {
    let (n_scenes, scene_size, ..) = scale.accuracy_dataset();
    let night_cfg = SceneConfig {
        illumination: 0.45,
        ..SceneConfig {
            width: scene_size,
            height: scene_size,
            ..SceneConfig::tiny(scene_size)
        }
    };

    // One labeled reference acquisition for calibration…
    let reference = generate(&night_cfg, 0x1417);
    let cal = calibrate(&[(&reference.rgb, &reference.truth)]);

    // …evaluated on fresh night scenes.
    let strategies = [
        ClassRanges::paper(),
        ClassRanges::partial_night(),
        cal.ranges,
    ];
    let mut sums = [0f64; 3];
    for i in 0..n_scenes {
        let scene = generate(&night_cfg, 0x2000 + i as u64);
        for (k, ranges) in strategies.iter().enumerate() {
            sums[k] += accuracy(&segment_classes(&scene.rgb, ranges), &scene.truth);
        }
    }
    NightTransfer {
        scenes: n_scenes,
        summer_accuracy: sums[0] / n_scenes as f64,
        rescaled_accuracy: sums[1] / n_scenes as f64,
        calibrated_accuracy: sums[2] / n_scenes as f64,
        fitted_cuts: cal.ranges.value_cuts(),
    }
}

impl NightTransfer {
    /// Renders the experiment summary.
    pub fn render(&self) -> String {
        format!(
            "SEASON TRANSFER (§IV-B-2): auto-label accuracy on {} partial-night scenes\n\
             {:>42} | {:>8.2}%\n{:>42} | {:>8.2}%\n{:>42} | {:>8.2}%  (fitted V cuts: water<= {}, thick>= {})\n",
            self.scenes,
            "summer thresholds (paper values, blind)",
            self.summer_accuracy * 100.0,
            "analytic illumination rescale (x0.45)",
            self.rescaled_accuracy * 100.0,
            "auto-calibrated from 1 labeled scene",
            self.calibrated_accuracy * 100.0,
            self.fitted_cuts.0,
            self.fitted_cuts.1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn night_transfer_shows_failure_and_recovery() {
        let t = run(Scale::Small);
        assert!(
            t.summer_accuracy < 0.75,
            "summer thresholds should fail at night: {:.3}",
            t.summer_accuracy
        );
        assert!(
            t.rescaled_accuracy > 0.9,
            "rescale should recover: {:.3}",
            t.rescaled_accuracy
        );
        assert!(
            t.calibrated_accuracy > 0.9,
            "calibration should recover: {:.3}",
            t.calibrated_accuracy
        );
    }
}
