//! soak-bench — the seeded chaos-soak harness (DESIGN.md §4.8).
//!
//! K seeded random fault schedules, four legs, one discipline: every
//! fault decision is pure in `(seed, site, key)`, so every schedule's
//! expected behavior is *precomputed* and the run is checked against it:
//!
//! * **durable** — a torture loop over [`seaice_obs::durable`] under
//!   probabilistic ENOSPC / torn-write / bit-flip / read-corruption
//!   rules. A harness-side oracle replays the plan's pure decisions on
//!   its own copy of the expected on-disk bytes (via the public
//!   [`durable::unframe`]) and every write/read outcome must match it
//!   exactly — a corrupt payload returned as `Ok` is a violation.
//! * **stream** — kill–resume under IO faults on the checkpoint file:
//!   a run killed mid-feed and resumed must produce a drift series
//!   byte-identical to an uninterrupted reference, even when checkpoint
//!   writes tear or the stored snapshot is bit-flipped (the resume
//!   discards it and replays — time lost, never correctness).
//! * **mapreduce** — a seed-chosen executor panics on every task under
//!   a resilient policy; the collected output must equal the fault-free
//!   run's exactly.
//! * **serve** — a seed-chosen request kills the only replica mid-batch;
//!   the restarted replica must answer every tile bit-identically to a
//!   direct `model.predict`.
//!
//! A failed schedule is minimized on the spot: the row carries a
//! `seed=… site=… key=…` repro line (from the plan's recorded fired-
//! fault log) that re-arms the exact injection. Zero violations is the
//! zero-tolerance claim `BENCH_soak.json` pins.

use crate::scale::Scale;
use seaice_core::stream_workflow::{
    run_stream, run_stream_resumable, train_stream_model, StreamResumeConfig, StreamWorkflowConfig,
};
use seaice_faults::{mix, FaultAction, FaultPlan, FaultRule};
use seaice_imgproc::buffer::Image;
use seaice_mapreduce::{ClusterSpec, CostModel, RunPolicy, Session};
use seaice_obs::durable::{self, DurableCtx, RetryPolicy};
use seaice_s2::synth::{generate, SceneConfig};
use seaice_serve::{tile_key, Engine, EngineConfig};
use seaice_stream::StreamPolicy;
use seaice_unet::checkpoint::snapshot;
use seaice_unet::{UNet, UNetConfig};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Base seed every schedule's seed is mixed from; pinned so the whole
/// soak — which faults fire, where, in what order — is reproducible.
pub const SOAK_SEED: u64 = 0x50AB;

/// Writes per durable-torture schedule.
const TORTURE_WRITES: u64 = 16;

/// One schedule's verdict.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SoakRow {
    /// Which leg the schedule ran ("durable" / "stream" / "mapreduce" /
    /// "serve").
    pub leg: String,
    /// Schedule index within the leg.
    pub schedule: u64,
    /// The schedule's fault-plan seed.
    pub seed: u64,
    /// Faults the plan actually fired.
    pub injections: u64,
    /// Every invariant held.
    pub ok: bool,
    /// Minimized repro line when `ok` is false.
    pub repro: Option<String>,
    /// What happened, in words.
    pub note: String,
}

/// The rendered soak run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SoakBench {
    /// Total schedules executed.
    pub schedules: usize,
    /// Schedules that broke an invariant (must be 0).
    pub violations: usize,
    /// Faults fired across every schedule.
    pub injections_fired: u64,
    /// Durable-torture write attempts.
    pub torture_writes: usize,
    /// Torture writes the faults made fail (torn / ENOSPC / transient).
    pub write_faults: usize,
    /// Reads that correctly *refused* corrupt bytes instead of loading
    /// them.
    pub corrupt_reads_refused: usize,
    /// Read-side corruption that hit the magic marker and demoted the
    /// frame to a legacy passthrough (documented edge: transient, a
    /// clean re-read still verifies).
    pub legacy_demotions: usize,
    /// Stream checkpoints durably written across kill–resume schedules.
    pub checkpoints_written: usize,
    /// Stream checkpoint writes the faults made fail (tolerated: only
    /// replayed work).
    pub checkpoint_write_failures: usize,
    /// Every recovered output matched its fault-free reference byte for
    /// byte (stream / mapreduce / serve legs).
    pub byte_identical: bool,
    /// Wall-clock seconds for the whole soak.
    pub wall_secs: f64,
    /// One row per schedule.
    pub rows: Vec<SoakRow>,
}

/// Counters the durable-torture leg accumulates.
#[derive(Default)]
struct DurableTally {
    writes: usize,
    write_faults: usize,
    corrupt_refused: usize,
    legacy_demotions: usize,
}

/// The minimized repro: the last firing the recorded plan observed is,
/// by construction, the injection the failing check tripped over (each
/// op's decisions are checked immediately after it runs).
fn repro_line(plan: &FaultPlan, seed: u64) -> String {
    match plan.fired_log().last() {
        Some(f) => format!(
            "seed={seed:#x} site={} key={:#x} action={:?}",
            f.site, f.key, f.action
        ),
        None => format!("seed={seed:#x} site=<none fired>"),
    }
}

/// Deterministic per-op payload: varies in content and length so frames
/// exercise different bit positions.
fn torture_payload(seed: u64, op: u64) -> Vec<u8> {
    let n = 48 + (mix(seed, op) as usize % 160);
    (0..n as u64).map(|j| mix(mix(seed, op), j) as u8).collect()
}

/// One durable-torture schedule: `TORTURE_WRITES` write/read rounds
/// against a single target file, each round's outcome checked against
/// the oracle's precomputed expectation.
fn durable_schedule(dir: &Path, i: u64, tally: &mut DurableTally) -> SoakRow {
    let seed = mix(SOAK_SEED, i);
    let plan = Arc::new(
        FaultPlan::seeded(seed)
            .recording()
            .with_rule(durable::SITE_WRITE_ENOSPC, FaultRule::panics(0.10))
            .with_rule(
                durable::SITE_WRITE_TORN,
                FaultRule {
                    panic_prob: 0.15,
                    error_prob: 0.10,
                    ..FaultRule::default()
                },
            )
            .with_rule(durable::SITE_WRITE_BITFLIP, FaultRule::panics(0.15))
            .with_rule(durable::SITE_READ_CORRUPT, FaultRule::panics(0.25)),
    );
    // One attempt per write: every pure decision maps 1:1 to an
    // observable outcome, so the oracle below needs no retry modeling.
    let ctx = DurableCtx::with_faults(Arc::clone(&plan)).with_retry(RetryPolicy::once());
    let clean = DurableCtx::disabled();
    let path = dir.join(format!("torture_{i:02}.bin"));

    // The oracle's view: the exact framed bytes on disk, and the payload
    // a verified read is allowed to return (None = disk holds corruption
    // that every read must refuse).
    let mut disk: Option<Vec<u8>> = None;
    let mut last_good: Option<Vec<u8>> = None;
    let mut violation: Option<String> = None;

    for op in 0..TORTURE_WRITES {
        let payload = torture_payload(seed, op);
        let akey = mix(op, 0); // RetryPolicy::once ⇒ only attempt 0 exists
        let fires = |site: &str| !matches!(plan.decide(site, akey), FaultAction::None);
        let enospc = fires(durable::SITE_WRITE_ENOSPC);
        let torn = plan.decide(durable::SITE_WRITE_TORN, akey);
        // Precedence mirrors the write path: ENOSPC, then torn, then the
        // silent bit-flip (only a completed write can be flipped).
        let expect_ok = !enospc && torn == FaultAction::None;
        let bitflip = expect_ok && fires(durable::SITE_WRITE_BITFLIP);

        tally.writes += 1;
        let wrote = durable::write_framed(&path, &payload, &ctx, op);
        if wrote.is_ok() != expect_ok {
            violation = Some(format!(
                "op {op}: write returned {} but the plan decided {}",
                if wrote.is_ok() { "Ok" } else { "Err" },
                if expect_ok { "success" } else { "failure" }
            ));
            break;
        }
        if expect_ok {
            let mut framed = durable::frame(&payload);
            if bitflip {
                // Replays the writer's deterministic flip formula.
                let body = framed.len() - durable::HEADER_LEN;
                let bit = (mix(akey, 0xB17F) as usize) % (body * 8);
                framed[durable::HEADER_LEN + bit / 8] ^= 1 << (bit % 8);
                last_good = None;
            } else {
                last_good = Some(payload.clone());
            }
            disk = Some(framed);
        } else {
            tally.write_faults += 1;
        }

        // Clean read: must return the last intact payload, or refuse.
        match durable::read_framed(&path, &clean, op) {
            Ok(bytes) => {
                if last_good.as_deref() != Some(bytes.as_slice()) {
                    violation = Some(format!("op {op}: clean read accepted corrupt state"));
                    break;
                }
            }
            Err(e) if disk.is_none() => {
                if e.into_io().kind() != io::ErrorKind::NotFound {
                    violation = Some(format!("op {op}: empty target read a non-NotFound error"));
                    break;
                }
            }
            Err(_) => {
                if last_good.is_some() {
                    violation = Some(format!("op {op}: clean read refused an intact file"));
                    break;
                }
                tally.corrupt_refused += 1;
            }
        }

        // Fault-injected read: the oracle applies the same deterministic
        // flip to its copy of the disk image and runs the public frame
        // validator; the real read must agree byte for byte.
        let Some(img) = &disk else { continue };
        let rkey = mix(op, 0xAB);
        let rc = fires_read(&plan, rkey);
        let mut view = img.clone();
        if rc {
            let bit = (mix(rkey, 0x5EAD) as usize) % (view.len() * 8);
            view[bit / 8] ^= 1 << (bit % 8);
        }
        let expect = durable::unframe(&view, &path, durable::MAX_PAYLOAD_BYTES).map(|p| match p {
            Some(payload) => payload.to_vec(),
            None => view.clone(),
        });
        match (durable::read_framed(&path, &ctx, rkey), expect) {
            (Ok(got), Ok(want)) => {
                if got != want {
                    violation = Some(format!("op {op}: faulty read disagreed with the oracle"));
                    break;
                }
                if rc && last_good.as_deref() != Some(got.as_slice()) {
                    // The flip hit the magic marker: the frame was
                    // demoted to a legacy passthrough (or, vanishingly,
                    // cancelled an earlier write flip). Transient — the
                    // clean read above still verified the real file.
                    tally.legacy_demotions += 1;
                }
            }
            (Err(_), Err(_)) => tally.corrupt_refused += 1,
            (got, want) => {
                violation = Some(format!(
                    "op {op}: faulty read {} but the oracle expected {}",
                    if got.is_ok() { "succeeded" } else { "failed" },
                    if want.is_ok() { "success" } else { "refusal" }
                ));
                break;
            }
        }
    }

    let ok = violation.is_none();
    SoakRow {
        leg: "durable".into(),
        schedule: i,
        seed,
        injections: plan.injections_fired(),
        ok,
        repro: (!ok).then(|| repro_line(&plan, seed)),
        note: violation.unwrap_or_else(|| format!("{TORTURE_WRITES} write/read rounds")),
    }
}

fn fires_read(plan: &FaultPlan, rkey: u64) -> bool {
    !matches!(
        plan.decide(durable::SITE_READ_CORRUPT, rkey),
        FaultAction::None
    )
}

/// One stream kill–resume schedule: reference run, then a killed run and
/// a resuming run under checkpoint IO faults; the resumed series must be
/// byte-identical to the reference.
fn stream_schedule(dir: &Path, i: u64) -> (SoakRow, usize, usize) {
    let seed = mix(SOAK_SEED ^ 0x57E4, i);
    let mut cfg = StreamWorkflowConfig::tiny();
    cfg.seed = seed | 1;
    let ckpt = train_stream_model(&cfg);
    let reference = run_stream(
        &cfg,
        &ckpt,
        StreamPolicy::default(),
        Arc::new(FaultPlan::disabled()),
    )
    .expect("fault-free reference run")
    .series
    .to_bytes();

    let plan = Arc::new(
        FaultPlan::seeded(seed)
            .recording()
            .with_rule(
                durable::SITE_WRITE_TORN,
                FaultRule {
                    panic_prob: 0.25,
                    error_prob: 0.15,
                    ..FaultRule::default()
                },
            )
            .with_rule(durable::SITE_WRITE_BITFLIP, FaultRule::panics(0.20))
            .with_rule(durable::SITE_WRITE_ENOSPC, FaultRule::panics(0.10))
            .with_rule(durable::SITE_READ_CORRUPT, FaultRule::panics(0.25)),
    );
    let dctx = DurableCtx::with_faults(Arc::clone(&plan)).with_retry(RetryPolicy::once());
    let path: PathBuf = dir.join(format!("stream_{i:02}.ckpt"));
    let total = cfg.regions * cfg.revisits as usize;
    let every = 1 + (i as usize % 2);
    let kill_after = 1 + (i as usize % (total - 1));

    let run = |resume: StreamResumeConfig| {
        run_stream_resumable(
            &cfg,
            &ckpt,
            StreamPolicy::default(),
            Arc::new(FaultPlan::disabled()),
            &resume,
            &dctx,
        )
    };
    let (ok, note, written, failed) = match (
        run(StreamResumeConfig::new(&path, every).killed_after(kill_after)),
        run(StreamResumeConfig::new(&path, every)),
    ) {
        (Ok(killed), Ok(resumed)) => {
            let identical = resumed.finished
                && resumed.series.as_ref().map(|s| s.to_bytes()) == Some(reference.clone());
            let note = format!(
                "killed at {} of {total} scenes, resumed from {}{}{}",
                killed.scenes_done,
                resumed.resumed_from,
                if resumed.corrupt_checkpoint_discarded {
                    " (corrupt checkpoint discarded)"
                } else {
                    ""
                },
                if identical {
                    ""
                } else {
                    " — SERIES DIVERGED"
                },
            );
            (
                identical,
                note,
                killed.checkpoints_written + resumed.checkpoints_written,
                killed.checkpoint_write_failures + resumed.checkpoint_write_failures,
            )
        }
        _ => (false, "a resumable run errored".into(), 0, 0),
    };

    let row = SoakRow {
        leg: "stream".into(),
        schedule: i,
        seed,
        injections: plan.injections_fired(),
        ok,
        repro: (!ok).then(|| repro_line(&plan, seed)),
        note,
    };
    (row, written, failed)
}

fn scramble(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

/// One mapreduce schedule: a seed-chosen executor (of 4) panics on every
/// task; the resilient scheduler must deliver the exact fault-free
/// output set.
fn mapreduce_schedule(items: usize, i: u64) -> SoakRow {
    let seed = mix(SOAK_SEED ^ 0xC0DE, i);
    let data: Vec<u64> = (0..items as u64).map(|x| mix(seed, x)).collect();

    let s = Session::new(ClusterSpec::new(4, 2).unwrap(), CostModel::gcd_n2());
    let (df, _) = s.read(data.clone(), 8.0);
    let (lazy, _) = df.map(&s, scramble);
    let (want, _) = lazy.collect(&s, 8.0);

    let victim = seed % 4;
    let plan = Arc::new(FaultPlan::seeded(seed).recording().fail_keys(
        "mapreduce.executor",
        &[victim],
        FaultAction::Panic,
    ));
    let s = Session::new(ClusterSpec::new(4, 2).unwrap(), CostModel::gcd_n2());
    let (df, _) = s.read(data, 8.0);
    let (lazy, _) = df.map(&s, scramble);
    let (ok, note) = match lazy.collect_ft(&s, 8.0, RunPolicy::resilient(), Arc::clone(&plan)) {
        Ok((got, _, ft)) => {
            let identical = got == want && plan.injections_fired() >= 1;
            (
                identical,
                format!(
                    "executor {victim}/4 killed, {} retries{}",
                    ft.retries,
                    if identical {
                        ""
                    } else {
                        " — OUTPUT DIVERGED"
                    }
                ),
            )
        }
        Err(e) => (false, format!("job failed to recover: {e}")),
    };

    SoakRow {
        leg: "mapreduce".into(),
        schedule: i,
        seed,
        injections: plan.injections_fired(),
        ok,
        repro: (!ok).then(|| repro_line(&plan, seed)),
        note,
    }
}

/// One serve schedule: a seed-chosen request's first batch kills the
/// only replica; the restarted replica must answer every tile exactly
/// like a direct forward pass.
fn serve_schedule(tiles_n: usize, i: u64) -> SoakRow {
    let seed = mix(SOAK_SEED ^ 0x5E12, i);
    let mut model = UNet::new(UNetConfig {
        depth: 1,
        base_filters: 4,
        dropout: 0.0,
        seed,
        ..UNetConfig::paper()
    });
    let ckpt = snapshot(&mut model);
    let tiles: Vec<Image<u8>> = (0..tiles_n as u64)
        .map(|t| generate(&SceneConfig::tiny(16), mix(seed, t)).rgb)
        .collect();
    let victim = seed as usize % tiles.len();

    let plan = Arc::new(FaultPlan::seeded(seed).recording().fail_keys(
        "serve.worker",
        &[mix(tile_key(&tiles[victim]), 0)],
        FaultAction::Panic,
    ));
    let engine = Engine::with_faults(
        &ckpt,
        EngineConfig {
            workers: 1,
            max_batch_size: 1,
            max_wait: Duration::from_millis(1),
            queue_capacity: 16,
            cache_capacity: 0,
            filter: false,
            ..EngineConfig::for_tile(16)
        },
        Arc::clone(&plan),
    )
    .expect("soak engine config is valid");

    let mut identical = true;
    for t in &tiles {
        match engine.classify(t.clone()) {
            Ok(got) => {
                let chw = seaice_core::adapters::image_to_chw(t);
                let x = seaice_nn::Tensor::from_vec(&[1, 3, 16, 16], chw);
                identical &= *got == model.predict(&x);
            }
            Err(_) => identical = false,
        }
    }
    let stats = engine.stats();
    engine.shutdown();

    let ok = identical && stats.robustness.worker_restarts >= 1 && plan.injections_fired() >= 1;
    SoakRow {
        leg: "serve".into(),
        schedule: i,
        seed,
        injections: plan.injections_fired(),
        ok,
        repro: (!ok).then(|| repro_line(&plan, seed)),
        note: format!(
            "replica killed on tile {victim}, {} restart(s), {} tiles answered{}",
            stats.robustness.worker_restarts,
            tiles.len(),
            if identical {
                ""
            } else {
                " — ANSWERS DIVERGED"
            }
        ),
    }
}

/// Runs every schedule at `scale`.
///
/// Injected panics (mapreduce executors, serve replicas) are expected,
/// so their default stderr backtraces are filtered out for the duration;
/// any *other* panic still reports normally.
pub fn run(scale: Scale) -> SoakBench {
    let (durable_n, stream_n, mr_n, serve_n) = scale.soak_schedules();
    let (items, _, serve_tiles) = scale.chaos_workload();
    let dir = std::env::temp_dir().join(format!("seaice-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create soak scratch dir");

    let t0 = Instant::now();
    let mut rows = Vec::new();
    let mut tally = DurableTally::default();
    for i in 0..durable_n {
        rows.push(durable_schedule(&dir, i as u64, &mut tally));
    }
    let mut checkpoints_written = 0;
    let mut checkpoint_write_failures = 0;
    for i in 0..stream_n {
        let (row, written, failed) = stream_schedule(&dir, i as u64);
        checkpoints_written += written;
        checkpoint_write_failures += failed;
        rows.push(row);
    }
    let panicking: Vec<SoakRow> = crate::with_suppressed_panics("injected fault", || {
        let mut v: Vec<SoakRow> = (0..mr_n)
            .map(|i| mapreduce_schedule(items, i as u64))
            .collect();
        v.extend((0..serve_n).map(|i| serve_schedule(serve_tiles.clamp(2, 8), i as u64)));
        v
    });
    rows.extend(panicking);
    let wall_secs = t0.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&dir).ok();

    SoakBench {
        schedules: rows.len(),
        violations: rows.iter().filter(|r| !r.ok).count(),
        injections_fired: rows.iter().map(|r| r.injections).sum(),
        torture_writes: tally.writes,
        write_faults: tally.write_faults,
        corrupt_reads_refused: tally.corrupt_refused,
        legacy_demotions: tally.legacy_demotions,
        checkpoints_written,
        checkpoint_write_failures,
        byte_identical: rows.iter().filter(|r| r.leg != "durable").all(|r| r.ok),
        wall_secs,
        rows,
    }
}

impl SoakBench {
    /// The `BENCH_soak.json` perf-trajectory summary: zero-tolerance
    /// violation and byte-identity claims, loose injection/detection
    /// counts (the schedules are seeded, but only a collapse should
    /// flag), and wall time looser still.
    pub fn summary(&self) -> seaice_obs::bench::Summary {
        seaice_obs::bench::Summary::new("soak")
            .metric("schedules", self.schedules as f64, "count", true, 0.0)
            .metric("violations", self.violations as f64, "count", false, 0.0)
            .metric(
                "byte_identical",
                if self.byte_identical { 1.0 } else { 0.0 },
                "bool",
                true,
                0.0,
            )
            .metric(
                "injections_fired",
                self.injections_fired as f64,
                "count",
                true,
                1.0,
            )
            .metric(
                "corrupt_reads_refused",
                self.corrupt_reads_refused as f64,
                "count",
                true,
                1.0,
            )
            .metric(
                "checkpoints_written",
                self.checkpoints_written as f64,
                "count",
                true,
                1.0,
            )
            .metric("wall_secs", self.wall_secs, "s", false, 3.0)
    }

    /// Renders the soak table (plus a repro line per violation).
    pub fn render(&self) -> String {
        let count = |leg: &str| self.rows.iter().filter(|r| r.leg == leg).count();
        let fired = |leg: &str| -> u64 {
            self.rows
                .iter()
                .filter(|r| r.leg == leg)
                .map(|r| r.injections)
                .sum()
        };
        let passed = |leg: &str| self.rows.iter().filter(|r| r.leg == leg && r.ok).count();
        let mut s = String::new();
        s.push_str(&format!(
            "SOAK BENCH: {} seeded fault schedules ({} durable, {} stream, {} mapreduce, {} serve) — \
             every outcome checked against a precomputed oracle or a fault-free reference\n",
            self.schedules,
            count("durable"),
            count("stream"),
            count("mapreduce"),
            count("serve"),
        ));
        s.push_str("leg       | runs | pass | fired | notes\n");
        s.push_str(&format!(
            "durable   | {:>4} | {:>4} | {:>5} | {} writes ({} faulted), {} corrupt reads refused, {} legacy demotions\n",
            count("durable"), passed("durable"), fired("durable"),
            self.torture_writes, self.write_faults, self.corrupt_reads_refused, self.legacy_demotions,
        ));
        s.push_str(&format!(
            "stream    | {:>4} | {:>4} | {:>5} | {} checkpoints written, {} writes faulted, kill–resume byte-identical\n",
            count("stream"), passed("stream"), fired("stream"),
            self.checkpoints_written, self.checkpoint_write_failures,
        ));
        s.push_str(&format!(
            "mapreduce | {:>4} | {:>4} | {:>5} | seed-chosen executor killed, output set byte-identical\n",
            count("mapreduce"), passed("mapreduce"), fired("mapreduce"),
        ));
        s.push_str(&format!(
            "serve     | {:>4} | {:>4} | {:>5} | seed-chosen request kills the replica, answers bit-identical\n",
            count("serve"), passed("serve"), fired("serve"),
        ));
        if self.violations == 0 {
            s.push_str(&format!(
                "violations: none ({} schedules clean in {:.2}s)\n",
                self.schedules, self.wall_secs
            ));
        } else {
            s.push_str(&format!("violations: {}\n", self.violations));
            for r in self.rows.iter().filter(|r| !r.ok) {
                s.push_str(&format!(
                    "  VIOLATION {}[{}]: {} — repro: {}\n",
                    r.leg,
                    r.schedule,
                    r.note,
                    r.repro.as_deref().unwrap_or("<missing>"),
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soakbench_small_runs_every_schedule_clean() {
        let b = run(Scale::Small);
        assert_eq!(b.schedules, 20);
        assert!(b.violations == 0, "soak violations:\n{}", b.render());
        assert!(b.byte_identical, "a recovery leg diverged:\n{}", b.render());
        assert!(b.injections_fired >= 10, "the schedules barely fired");
        assert!(
            b.corrupt_reads_refused >= 1,
            "no corruption was ever detected — the torture rules are dead"
        );
        assert!(b.write_faults >= 1, "no write ever failed");
        assert!(b.checkpoints_written >= 1);
        let table = b.render();
        assert!(table.contains("SOAK BENCH"));
        assert!(table.contains("violations: none"));
        let s = b.summary();
        assert_eq!(s.area, "soak");
        assert_eq!(s.metrics["violations"].value, 0.0);
        assert_eq!(s.metrics["byte_identical"].value, 1.0);
    }
}
