//! stream-bench — the streaming DAG workload (DESIGN.md §4.7).
//!
//! Three legs over the same catalog → tile → label → infer →
//! change-detect pipeline, all checked against one reference drift
//! series:
//!
//! * **reference** — a single-worker fault-free run produces the
//!   canonical per-region drift series;
//! * **parallel** — the same run at the scale's worker count must emit a
//!   byte-identical series (the scheduler's determinism contract), and
//!   is the timed leg;
//! * **chaos** — label-stage worker 0 panics on every attempt under a
//!   resilient policy; the scheduler retries each kill on another worker
//!   and blacklists the assassin, and the series must *still* match the
//!   reference byte for byte.
//!
//! Simulated stage costs (the paper's 390 s / 4224 tiles for labeling)
//! drive the scheduler's manual clock, so the reported makespan is
//! deterministic; wall time is reported separately.

use crate::scale::Scale;
use seaice_core::stream_workflow::{run_stream, train_stream_model, StreamWorkflowConfig};
use seaice_faults::{mix, FaultAction, FaultPlan};
use seaice_stream::{StreamPolicy, StreamReport};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Index of the label stage in the streaming DAG (0 = catalog source).
pub const LABEL_STAGE: u64 = 2;

/// The rendered streaming demonstration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamBench {
    /// Monitored regions.
    pub regions: usize,
    /// Revisits per region.
    pub revisits: u32,
    /// Scene side in pixels.
    pub scene_side: usize,
    /// Tile side in pixels.
    pub tile: usize,
    /// Workers on the heavy stages.
    pub workers: usize,
    /// Tiles classified per run.
    pub tiles: u64,
    /// Drift-series points emitted (regions × revisits).
    pub points: usize,
    /// Wall seconds spent training the streaming model.
    pub train_secs: f64,
    /// Parallel run matches the single-worker reference byte for byte.
    pub deterministic_across_workers: bool,
    /// Chaos run matches the reference byte for byte.
    pub chaos_bit_identical: bool,
    /// Faults the chaos plan actually fired.
    pub chaos_injections: u64,
    /// Attempts the chaos run retried on another worker.
    pub chaos_retries: u64,
    /// Workers the chaos run blacklisted.
    pub chaos_blacklisted: u64,
    /// Simulated compute across all stages (parallel leg), seconds.
    pub sim_total_secs: f64,
    /// Simulated bottleneck makespan (parallel leg), seconds.
    pub sim_makespan_secs: f64,
    /// Sends into a full stage queue during the parallel leg.
    pub backpressure_waits: u64,
    /// Wall seconds of the parallel leg.
    pub wall_secs: f64,
    /// Tiles per wall second over the parallel leg.
    pub tiles_per_sec: f64,
    /// Mean changed fraction over revisits > 0 — the change-detection
    /// signal (the synthetic ice genuinely drifts, so this is > 0).
    pub mean_changed_frac: f64,
}

fn config(scale: Scale) -> StreamWorkflowConfig {
    let (regions, revisits, scene_side, tile, workers) = scale.stream_workload();
    StreamWorkflowConfig {
        regions,
        revisits,
        cadence_days: 2,
        scene_side,
        tile,
        drift_px: 4,
        seed: 0x5EA1CE,
        workers,
        channel_capacity: 8,
        epochs: 2,
    }
}

fn infer_tiles(report: &StreamReport) -> u64 {
    report
        .stages
        .iter()
        .find(|s| s.name == "infer")
        .map(|s| s.items_in)
        .unwrap_or(0)
}

/// Runs the three legs at `scale`.
///
/// The chaos leg's injected panics are expected, so their default stderr
/// backtraces are filtered out for the duration of the run; any *other*
/// panic still reports normally.
pub fn run(scale: Scale) -> StreamBench {
    let cfg = config(scale);

    let t0 = Instant::now();
    let ckpt = train_stream_model(&cfg);
    let train_secs = t0.elapsed().as_secs_f64();

    // Reference: one worker everywhere, no faults.
    let mut one = cfg.clone();
    one.workers = 1;
    let reference = run_stream(
        &one,
        &ckpt,
        StreamPolicy::default(),
        Arc::new(FaultPlan::disabled()),
    )
    .expect("fault-free reference run");
    let want = reference.series.to_bytes();

    // Parallel: the timed leg.
    let t0 = Instant::now();
    let parallel = run_stream(
        &cfg,
        &ckpt,
        StreamPolicy::default(),
        Arc::new(FaultPlan::disabled()),
    )
    .expect("fault-free parallel run");
    let wall_secs = t0.elapsed().as_secs_f64();
    let tiles = infer_tiles(&parallel.report);

    // Chaos: label worker 0 panics on every attempt; the resilient
    // policy retries elsewhere and blacklists it.
    let faults = Arc::new(FaultPlan::seeded(0xBAD5EA).fail_keys(
        seaice_stream::FAULT_SITE_WORKER,
        &[mix(LABEL_STAGE, 0)],
        FaultAction::Panic,
    ));
    let chaos = crate::with_suppressed_panics("injected fault", || {
        run_stream(&cfg, &ckpt, StreamPolicy::resilient(), Arc::clone(&faults))
            .expect("the stream must survive one killed label worker")
    });

    let changed: Vec<f64> = reference
        .series
        .points
        .iter()
        .filter(|p| p.revisit > 0)
        .map(|p| p.changed_frac)
        .collect();
    let mean_changed_frac = changed.iter().sum::<f64>() / changed.len().max(1) as f64;

    StreamBench {
        regions: cfg.regions,
        revisits: cfg.revisits,
        scene_side: cfg.scene_side,
        tile: cfg.tile,
        workers: cfg.workers,
        tiles,
        points: reference.series.points.len(),
        train_secs,
        deterministic_across_workers: parallel.series.to_bytes() == want,
        chaos_bit_identical: chaos.series.to_bytes() == want,
        chaos_injections: faults.injections_fired(),
        chaos_retries: chaos.report.total_retries(),
        chaos_blacklisted: chaos.report.total_blacklisted(),
        sim_total_secs: parallel.report.sim_total_secs,
        sim_makespan_secs: parallel.report.sim_makespan_secs,
        backpressure_waits: parallel
            .report
            .stages
            .iter()
            .map(|s| s.backpressure_waits)
            .sum(),
        wall_secs,
        tiles_per_sec: tiles as f64 / wall_secs.max(1e-9),
        mean_changed_frac,
    }
}

impl StreamBench {
    /// The `BENCH_stream.json` perf-trajectory summary: zero-tolerance
    /// bit-identity claims plus the deterministic simulated costs
    /// (tight) and the wall-clock throughput (loose — only a collapse
    /// flags).
    pub fn summary(&self) -> seaice_obs::bench::Summary {
        seaice_obs::bench::Summary::new("stream")
            .metric(
                "deterministic_across_workers",
                if self.deterministic_across_workers {
                    1.0
                } else {
                    0.0
                },
                "bool",
                true,
                0.0,
            )
            .metric(
                "chaos_bit_identical",
                if self.chaos_bit_identical { 1.0 } else { 0.0 },
                "bool",
                true,
                0.0,
            )
            .metric("drift_points", self.points as f64, "count", true, 0.0)
            .metric("tiles", self.tiles as f64, "count", true, 0.0)
            .metric(
                "chaos_injections",
                self.chaos_injections as f64,
                "count",
                true,
                1.0,
            )
            .metric(
                "chaos_retries",
                self.chaos_retries as f64,
                "count",
                true,
                1.0,
            )
            .metric("sim_total_secs", self.sim_total_secs, "s", false, 0.05)
            .metric(
                "sim_makespan_secs",
                self.sim_makespan_secs,
                "s",
                false,
                0.05,
            )
            // CI re-runs this area on whatever host it gets, so the wall
            // metrics only flag an order-of-magnitude collapse.
            .metric("wall_secs", self.wall_secs, "s", false, 3.0)
            .metric("tiles_per_sec", self.tiles_per_sec, "tiles/s", true, 0.9)
    }

    /// Renders the streaming table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "STREAM BENCH: {} regions x {} revisits ({}x{} scenes, {}x{} tiles, {} workers) — \
             every leg byte-checked against the single-worker reference\n",
            self.regions,
            self.revisits,
            self.scene_side,
            self.scene_side,
            self.tile,
            self.tile,
            self.workers
        ));
        s.push_str("leg      | identical | fired | retry | black | notes\n");
        s.push_str(&format!(
            "parallel | {:<9} | {:>5} | {:>5} | {:>5} | {} tiles in {:.2}s wall ({:.1} tiles/s), {} backpressure waits\n",
            if self.deterministic_across_workers { "OK" } else { "MISMATCH" },
            0, 0, 0,
            self.tiles, self.wall_secs, self.tiles_per_sec, self.backpressure_waits,
        ));
        s.push_str(&format!(
            "chaos    | {:<9} | {:>5} | {:>5} | {:>5} | label worker 0 panics on every attempt\n",
            if self.chaos_bit_identical {
                "OK"
            } else {
                "MISMATCH"
            },
            self.chaos_injections,
            self.chaos_retries,
            self.chaos_blacklisted,
        ));
        s.push_str(&format!(
            "drift series: {} points, mean changed fraction {:.4} over revisits > 0\n",
            self.points, self.mean_changed_frac,
        ));
        s.push_str(&format!(
            "simulated: {:.1}s total compute, {:.1}s bottleneck makespan (label stage at the paper's 390s/4224 tiles); model trained in {:.1}s\n",
            self.sim_total_secs, self.sim_makespan_secs, self.train_secs,
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streambench_small_is_deterministic_and_survives_chaos() {
        let b = run(Scale::Small);
        assert!(b.deterministic_across_workers, "parallel leg diverged");
        assert!(b.chaos_bit_identical, "chaos leg diverged");
        assert!(b.chaos_injections >= 1, "the fault plan never fired");
        assert!(b.chaos_retries >= 1, "nothing was retried");
        assert_eq!(b.points, 2 * 4);
        assert!(b.tiles > 0);
        assert!(b.mean_changed_frac > 0.0, "the ice never drifted");
        let table = b.render();
        assert!(table.contains("STREAM BENCH"));
        assert!(!table.contains("MISMATCH"));
        let s = b.summary();
        assert_eq!(s.area, "stream");
        assert_eq!(s.metrics["chaos_bit_identical"].value, 1.0);
    }
}
