//! `reproduce` — regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce <target> [--scale small|medium|large] [--out DIR] [--trace FILE]
//!
//! targets:
//!   table1      multiprocessing auto-label speedup      (Table I, Fig. 10; writes BENCH_label.json)
//!   table2      map-reduce cluster scaling              (Table II; writes BENCH_mapreduce.json)
//!   table3      distributed U-Net training              (Table III, Fig. 12)
//!   table4      U-Net-Man vs U-Net-Auto accuracy        (Table IV)
//!   table5      accuracy by cloud coverage              (Table V)
//!   fig11       auto-label SSIM + qualitative panels    (Fig. 11)
//!   fig13       confusion matrices                      (Fig. 13)
//!   fig14       prediction panels                       (Fig. 14)
//!   scenes      66-scene labeling time                  (§IV-B)
//!   serve       serving-engine load generator           (DESIGN.md §4.2; writes BENCH_serve.json)
//!   infer       f32 vs int8 inference comparison        (DESIGN.md §4.5; writes BENCH_infer.json)
//!   chaos       fault-injection / recovery demo         (DESIGN.md §4.3; writes BENCH_chaos.json)
//!   stream      streaming DAG + change detection        (DESIGN.md §4.7; writes BENCH_stream.json)
//!   soak        seeded chaos-soak harness               (DESIGN.md §4.8; writes BENCH_soak.json)
//!   ablation    cloud/shadow-filter design ablations    (DESIGN.md §6)
//!   sweep       batch-size / dropout exploration        (§IV-A)
//!   night       season-transfer + threshold calibration (§IV-B-2)
//!   all         everything above
//!   bench-check compare BENCH_*.json against baselines  [--current DIR] [--baseline DIR]
//!   trace-check validate a Chrome trace_event JSON file  (positional: the file)
//!   sarif-check validate a seaice-lint SARIF 2.1.0 file   (positional: the file)
//! ```
//!
//! PPM/PGM images for the figure targets land in `--out` (default
//! `reproduce-out/`). Benchmark areas write `BENCH_<area>.json`
//! perf-trajectory summaries (DESIGN.md §4.6) into the working directory;
//! a failed write is reported on stderr and flips the exit code to 1
//! instead of aborting the remaining targets. `--trace FILE` records
//! structured spans for the run and exports them as Chrome `trace_event`
//! JSON (`chrome://tracing` / Perfetto loadable).

use seaice_bench::scale::Scale;
use seaice_bench::{table1, table2, table3, table45};
use seaice_core::adapters::{
    mask_to_image, predictions_to_mask, tile_to_sample, InputVariant, LabelSource,
};
use seaice_imgproc::io::write_ppm;
use seaice_label::autolabel::{auto_label, AutoLabelConfig};
use seaice_nn::Tensor;
use seaice_obs::bench::Summary;
use std::path::{Path, PathBuf};

struct Args {
    target: String,
    /// Second positional argument (the file for `trace-check`).
    operand: Option<String>,
    scale: Scale,
    out: PathBuf,
    trace: Option<PathBuf>,
    current: PathBuf,
    baseline: PathBuf,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut target = None;
    let mut operand = None;
    let mut scale = Scale::Medium;
    let mut out = PathBuf::from("reproduce-out");
    let mut trace = None;
    let mut current = PathBuf::from(".");
    let mut baseline = PathBuf::from(".");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (use small|medium|large)");
                    std::process::exit(2);
                });
            }
            "--out" => out = PathBuf::from(args.next().unwrap_or_default()),
            "--trace" => trace = Some(PathBuf::from(args.next().unwrap_or_default())),
            "--current" => current = PathBuf::from(args.next().unwrap_or_default()),
            "--baseline" => baseline = PathBuf::from(args.next().unwrap_or_default()),
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            t if target.is_none() => target = Some(t.to_string()),
            t if operand.is_none() => operand = Some(t.to_string()),
            t => {
                eprintln!("unexpected argument '{t}'");
                std::process::exit(2);
            }
        }
    }
    Args {
        target: target.unwrap_or_else(|| {
            print_usage();
            std::process::exit(2);
        }),
        operand,
        scale,
        out,
        trace,
        current,
        baseline,
    }
}

fn print_usage() {
    eprintln!(
        "usage: reproduce <table1|table2|table3|table4|table5|fig11|fig13|fig14|scenes|serve|infer|chaos|stream|soak|ablation|sweep|night|all> [--scale small|medium|large] [--out DIR] [--trace FILE]\n\
         \x20      reproduce bench-check [--current DIR] [--baseline DIR]\n\
         \x20      reproduce trace-check <trace.json>\n\
         \x20      reproduce sarif-check <lint.sarif>"
    );
}

/// Writes one `BENCH_<area>.json` into the working directory; on failure
/// reports to stderr and returns false instead of panicking, so the rest
/// of a `reproduce all` run still executes (the exit code records it).
fn write_summary(summary: &Summary) -> bool {
    match summary.write_to_dir(Path::new(".")) {
        Ok(path) => {
            println!("wrote {}\n", path.display());
            true
        }
        Err(e) => {
            eprintln!("error: {e}");
            false
        }
    }
}

/// Diffs the current `BENCH_*.json` set against the baselines; exits
/// nonzero on any regression (or an unreadable/empty baseline set).
fn run_bench_check(current: &Path, baseline: &Path) -> ! {
    match seaice_obs::bench::compare_dirs(current, baseline) {
        Ok((checked, regressions)) => {
            println!(
                "bench-check: {} area(s) checked: {}",
                checked.len(),
                checked.join(", ")
            );
            if regressions.is_empty() {
                println!("bench-check: OK (no regressions beyond tolerance)");
                std::process::exit(0);
            }
            for r in &regressions {
                eprintln!("bench-check: REGRESSION {r}");
            }
            eprintln!("bench-check: {} regression(s)", regressions.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("bench-check: {e}");
            std::process::exit(2);
        }
    }
}

/// Validates a Chrome `trace_event` JSON file; exits nonzero when it is
/// malformed or its begin/end spans do not balance.
fn run_trace_check(file: Option<&str>) -> ! {
    let Some(file) = file else {
        eprintln!("trace-check: missing trace file argument");
        std::process::exit(2);
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace-check: cannot read {file}: {e}");
            std::process::exit(2);
        }
    };
    match seaice_obs::trace::validate_chrome_trace(&src) {
        Ok(stats) => {
            println!(
                "trace-check: OK — {} events ({} span pairs, {} complete, {} instants)",
                stats.events, stats.span_pairs, stats.complete, stats.instants
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("trace-check: {file}: {e}");
            std::process::exit(1);
        }
    }
}

/// Validates a SARIF 2.1.0 file produced by `seaice-lint --format sarif`;
/// exits nonzero when it is malformed or not a seaice-lint run.
fn run_sarif_check(file: Option<&str>) -> ! {
    let Some(file) = file else {
        eprintln!("sarif-check: missing SARIF file argument");
        std::process::exit(2);
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sarif-check: cannot read {file}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match seaice_obs::json::parse(&src) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("sarif-check: {file}: {e}");
            std::process::exit(1);
        }
    };
    match validate_sarif(&doc) {
        Ok((rules, results)) => {
            println!("sarif-check: OK — {rules} rules declared, {results} result(s)");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("sarif-check: {file}: {e}");
            std::process::exit(1);
        }
    }
}

/// Checks the SARIF shape `seaice-lint` emits: version 2.1.0, one run with
/// the `seaice-lint` driver, every result's ruleId declared by the driver.
fn validate_sarif(doc: &seaice_obs::json::Value) -> Result<(usize, usize), String> {
    let version = doc
        .get("version")
        .and_then(|v| v.as_str())
        .ok_or("missing `version`")?;
    if version != "2.1.0" {
        return Err(format!("unexpected SARIF version `{version}`"));
    }
    let runs = doc
        .get("runs")
        .and_then(|v| v.as_arr())
        .ok_or("missing `runs` array")?;
    let run = runs.first().ok_or("empty `runs` array")?;
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .ok_or("missing `tool.driver`")?;
    let name = driver
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or("missing driver `name`")?;
    if name != "seaice-lint" {
        return Err(format!("unexpected driver `{name}`"));
    }
    let rules = driver
        .get("rules")
        .and_then(|v| v.as_arr())
        .ok_or("missing driver `rules`")?;
    let ids: Vec<&str> = rules
        .iter()
        .filter_map(|r| r.get("id").and_then(|v| v.as_str()))
        .collect();
    if ids.len() != rules.len() {
        return Err("driver rule without an `id`".into());
    }
    let results = run
        .get("results")
        .and_then(|v| v.as_arr())
        .ok_or("missing `results` array")?;
    for (i, res) in results.iter().enumerate() {
        let rule = res
            .get("ruleId")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("result {i} missing `ruleId`"))?;
        if !ids.contains(&rule) {
            return Err(format!("result {i} cites undeclared rule `{rule}`"));
        }
    }
    Ok((ids.len(), results.len()))
}

fn main() {
    let args = parse_args();
    match args.target.as_str() {
        "bench-check" => run_bench_check(&args.current, &args.baseline),
        "trace-check" => run_trace_check(args.operand.as_deref()),
        "sarif-check" => run_sarif_check(args.operand.as_deref()),
        _ => {}
    }
    if args.trace.is_some() {
        seaice_obs::trace::enable();
    }
    let t0 = std::time::Instant::now();
    let mut ok = true;
    match args.target.as_str() {
        "table1" | "fig10" => ok &= run_table1(args.scale),
        "table2" => ok &= run_table2(args.scale),
        "table3" | "fig12" => run_table3(args.scale),
        "table4" => {
            let mut exp = table45::prepare(args.scale);
            println!("(training both models took {:.1}s)\n", exp.train_secs);
            println!("{}", table45::render_table4(&exp.table4()));
        }
        "table5" => {
            let mut exp = table45::prepare(args.scale);
            println!("(training both models took {:.1}s)\n", exp.train_secs);
            println!("{}", table45::render_table5(&exp.table5()));
        }
        "fig11" => run_fig11(args.scale, &args.out),
        "fig13" => run_fig13(args.scale),
        "fig14" => run_fig14(args.scale, &args.out),
        "scenes" => println!("{}", table45::scenes_timing(args.scale).render()),
        "serve" => ok &= run_serve(args.scale),
        "infer" => ok &= run_infer(args.scale),
        "chaos" => ok &= run_chaos(args.scale),
        "stream" => ok &= run_stream(args.scale),
        "soak" => ok &= run_soak(args.scale),
        "ablation" => {
            println!("{}", seaice_bench::ablation::run(args.scale).render());
            println!("{}", seaice_bench::ablation::up_mode(args.scale).render());
        }
        "sweep" => println!("{}", seaice_bench::sweep::run(args.scale).render()),
        "night" => println!("{}", seaice_bench::night::run(args.scale).render()),
        "all" => {
            ok &= run_table1(args.scale);
            ok &= run_table2(args.scale);
            run_table3(args.scale);
            // Train once, reuse for tables 4/5 and fig 13/14.
            let mut exp = table45::prepare(args.scale);
            println!("(training both models took {:.1}s)\n", exp.train_secs);
            println!("{}", table45::render_table4(&exp.table4()));
            println!("{}", table45::render_table5(&exp.table5()));
            print_fig13(&mut exp);
            write_fig14(&mut exp, &args.out);
            run_fig11(args.scale, &args.out);
            println!("{}", table45::scenes_timing(args.scale).render());
            ok &= run_serve(args.scale);
            ok &= run_infer(args.scale);
            ok &= run_chaos(args.scale);
            ok &= run_stream(args.scale);
            ok &= run_soak(args.scale);
            println!("{}", seaice_bench::ablation::run(args.scale).render());
            println!("{}", seaice_bench::night::run(args.scale).render());
        }
        t => {
            eprintln!("unknown target '{t}'");
            print_usage();
            std::process::exit(2);
        }
    }
    if let Some(path) = &args.trace {
        match std::fs::write(path, seaice_obs::trace::export_chrome_json()) {
            Ok(()) => println!("wrote trace {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write trace {}: {e}", path.display());
                ok = false;
            }
        }
    }
    println!(
        "[reproduce {} done in {:.1}s]",
        args.target,
        t0.elapsed().as_secs_f64()
    );
    if !ok {
        std::process::exit(1);
    }
}

/// Runs the f32/int8 comparison and records `BENCH_infer.json` (common
/// `seaice-bench/1` schema) in the working directory.
fn run_infer(scale: Scale) -> bool {
    let b = seaice_bench::infer::run(scale);
    println!("{}", b.render());
    write_summary(&b.summary())
}

fn run_serve(scale: Scale) -> bool {
    let b = seaice_bench::servebench::run(scale);
    println!("{}", b.render());
    write_summary(&b.summary())
}

fn run_chaos(scale: Scale) -> bool {
    let b = seaice_bench::chaosbench::run(scale);
    println!("{}", b.render());
    write_summary(&b.summary())
}

fn run_stream(scale: Scale) -> bool {
    let b = seaice_bench::streambench::run(scale);
    println!("{}", b.render());
    write_summary(&b.summary())
}

/// Runs the chaos-soak harness; a violated invariant (the render carries
/// its repro line) flips the exit code as well as the summary metric.
fn run_soak(scale: Scale) -> bool {
    let b = seaice_bench::soakbench::run(scale);
    println!("{}", b.render());
    let clean = b.violations == 0;
    write_summary(&b.summary()) && clean
}

fn run_table1(scale: Scale) -> bool {
    let t = table1::run(scale);
    println!("{}", t.render());
    println!(
        "FIG 10 series (procs, speedup): {:?}\n",
        t.rows
            .iter()
            .map(|r| (r.processes, (r.speedup * 100.0).round() / 100.0))
            .collect::<Vec<_>>()
    );
    write_summary(&t.summary())
}

fn run_table2(scale: Scale) -> bool {
    let t = table2::run(scale);
    println!("{}", t.render());
    write_summary(&t.summary())
}

fn run_table3(scale: Scale) {
    let t = table3::run(scale);
    println!("{}", t.render());
    println!("FIG 12 series (gpus, speedup, imgs/s, total s, s/epoch):");
    for (g, s, d, tt, e) in t.fig12_series() {
        println!("  {g} GPUs: speedup {s:.2}, {d:.0} imgs/s, {tt:.1}s total, {e:.3}s/epoch");
    }
    println!();
}

fn run_fig11(scale: Scale, out: &Path) {
    let f = table45::fig11(scale);
    println!("{}", f.render());
    // Qualitative panels: one cloudy tile, its unfiltered and filtered
    // auto-labels (the Fig. 11 strip).
    let (scenes, scene, tile, _) = scale.accuracy_dataset();
    let cfg = seaice_core::WorkflowConfig::scaled(scenes, scene, tile, 1);
    let ds = seaice_s2::dataset::Dataset::build(cfg.dataset.clone());
    if let Some(t) = ds.validation.iter().find(|t| t.cloud_fraction > 0.2) {
        std::fs::create_dir_all(out).expect("create output dir");
        let filt = seaice_label::cloudshadow::CloudShadowFilter::new(
            seaice_label::cloudshadow::FilterConfig::for_tile(tile),
        )
        .apply(&t.rgb);
        let save = |name: &str, img: &seaice_imgproc::buffer::Image<u8>| {
            let p = out.join(name);
            write_ppm(&p, img).expect("write ppm");
            println!("  wrote {}", p.display());
        };
        save("fig11_a_original.ppm", &t.rgb);
        save(
            "fig11_b_label_unfiltered.ppm",
            &auto_label(&t.rgb, &AutoLabelConfig::unfiltered()).color_label,
        );
        save("fig11_c_filtered.ppm", &filt.filtered);
        save(
            "fig11_d_label_filtered.ppm",
            &auto_label(&t.rgb, &AutoLabelConfig::filtered_for_tile(tile)).color_label,
        );
    }
    println!();
}

fn print_fig13(exp: &mut table45::AccuracyExperiments) {
    println!("FIG 13: column-normalized confusion matrices (rows = predicted, columns = true)");
    for (labels, condition, eval) in exp.fig13() {
        let name = match labels {
            LabelSource::Manual => "U-Net-Man",
            LabelSource::Auto => "U-Net-Auto",
        };
        println!(
            "--- {name} / {condition} (accuracy {:.2}%)",
            eval.report.accuracy * 100.0
        );
        println!(
            "{}",
            eval.confusion
                .to_table(&["thick ice", "thin ice", "open water"])
        );
    }
}

fn run_fig13(scale: Scale) {
    let mut exp = table45::prepare(scale);
    println!("(training both models took {:.1}s)\n", exp.train_secs);
    print_fig13(&mut exp);
}

fn write_fig14(exp: &mut table45::AccuracyExperiments, out: &Path) {
    std::fs::create_dir_all(out).expect("create output dir");
    let tile_size = exp.cfg.dataset.tile_size;
    let label_cfg = exp.cfg.label;
    // One cloudy and one clear validation tile.
    let picks: Vec<_> = {
        let cloudy = exp
            .dataset
            .validation
            .iter()
            .find(|t| t.is_cloudy())
            .cloned();
        let clear = exp
            .dataset
            .validation
            .iter()
            .find(|t| !t.is_cloudy())
            .cloned();
        [cloudy, clear].into_iter().flatten().collect()
    };
    println!("FIG 14: qualitative panels");
    for (i, t) in picks.iter().enumerate() {
        let sample = tile_to_sample(t, InputVariant::Original, LabelSource::Manual, &label_cfg);
        let x = Tensor::from_vec(&[1, 3, tile_size, tile_size], sample.image.clone());
        let man = exp.models.unet_man.predict(&x);
        let auto = exp.models.unet_auto.predict(&x);
        let save = |name: String, img: &seaice_imgproc::buffer::Image<u8>| {
            let p = out.join(name);
            write_ppm(&p, img).expect("write ppm");
            println!("  wrote {}", p.display());
        };
        save(format!("fig14_{i}_a_s2.ppm"), &t.rgb);
        save(format!("fig14_{i}_b_truth.ppm"), &mask_to_image(&t.truth));
        save(
            format!("fig14_{i}_c_unet_man.ppm"),
            &mask_to_image(&predictions_to_mask(&man, tile_size)),
        );
        save(
            format!("fig14_{i}_d_unet_auto.ppm"),
            &mask_to_image(&predictions_to_mask(&auto, tile_size)),
        );
    }
    println!();
}

fn run_fig14(scale: Scale, out: &Path) {
    let mut exp = table45::prepare(scale);
    println!("(training both models took {:.1}s)\n", exp.train_secs);
    write_fig14(&mut exp, out);
}
