//! Table I / Fig. 10 — Python-multiprocessing-style auto-labeling
//! speedup on a 4-core/8-thread workstation.
//!
//! The per-tile auto-label cost is **measured** on this host by running
//! the real filter + segmentation; the worker-count sweep is then
//! projected through the calibrated [`HostModel`] of the paper's i5
//! (this host has a single core, so measured multi-worker wall time
//! cannot exhibit the paper's scaling — see DESIGN.md). The real
//! [`WorkerPool`] is still exercised at every worker count to verify the
//! results are identical to the sequential labels.

use crate::scale::Scale;
use crate::workloads::{labeling_tiles, measure_per_tile_cost, measure_per_tile_cost_with};
use seaice_label::autolabel::{
    auto_label_batch, auto_label_batch_pool, AutoLabelConfig, LabelBackend,
};
use seaice_label::parallel::WorkerPool;
use seaice_mapreduce::simsched::HostModel;
use serde::{Deserialize, Serialize};

/// One row of Table I.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    /// Worker/process count.
    pub processes: usize,
    /// Simulated parallel seconds on the paper's workstation.
    pub parallel_secs: f64,
    /// Simulated speedup vs one process.
    pub speedup: f64,
    /// The paper's published speedup for this row.
    pub paper_speedup: f64,
    /// Measured wall seconds of the real worker pool on this host.
    pub measured_secs: f64,
}

/// Complete Table I result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1 {
    /// Tiles labeled.
    pub tiles: usize,
    /// Tile side in pixels.
    pub tile_size: usize,
    /// Measured mean per-tile cost on this host (seconds), using the
    /// default (fused) segmentation backend.
    pub per_tile_secs: f64,
    /// Mean unfiltered per-tile labeling cost with the reference
    /// (`f32` HSV + range scans) backend, in seconds.
    pub reference_label_secs: f64,
    /// Mean unfiltered per-tile labeling cost with the fused integer/LUT
    /// backend, in seconds.
    pub fused_label_secs: f64,
    /// `reference_label_secs / fused_label_secs` — the measured payoff of
    /// the fused kernel on this host.
    pub fused_speedup: f64,
    /// Simulated sequential seconds for the full 4224-tile paper workload
    /// on the paper's workstation (for the "17.40 s" comparison).
    pub paper_workload_serial_secs: f64,
    /// Sweep rows (1, 2, 4, 6, 8 processes).
    pub rows: Vec<Table1Row>,
}

/// The paper's published speedups, by process count.
pub const PAPER_SPEEDUPS: [(usize, f64); 5] = [(1, 1.0), (2, 2.0), (4, 3.7), (6, 4.2), (8, 4.5)];

/// Runs the experiment.
pub fn run(scale: Scale) -> Table1 {
    let n = scale.label_tiles();
    let side = scale.label_tile_size();
    let tiles = labeling_tiles(n, side, 0x7AB1E1);
    let per_tile = measure_per_tile_cost(&tiles);
    let serial = per_tile * n as f64;
    let host = HostModel::paper_i5();

    // Fused-vs-reference labeling throughput on the same tiles, measured
    // without the filter so the segmentation kernel dominates the figure.
    let reference_label_secs = measure_per_tile_cost_with(
        &tiles,
        &AutoLabelConfig::unfiltered().with_backend(LabelBackend::Reference),
    );
    let fused_label_secs = measure_per_tile_cost_with(
        &tiles,
        &AutoLabelConfig::unfiltered().with_backend(LabelBackend::Fused),
    );

    let cfg = AutoLabelConfig::filtered_for_tile(side);
    let reference = auto_label_batch(&tiles, &cfg);

    let rows = PAPER_SPEEDUPS
        .iter()
        .map(|&(procs, paper)| {
            // Really run the worker pool (verifies results + measures
            // this host's wall time).
            let pool = WorkerPool::new(procs);
            let t0 = std::time::Instant::now();
            let out = auto_label_batch_pool(&pool, tiles.clone(), cfg);
            let measured = t0.elapsed().as_secs_f64();
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(
                    a.class_mask, b.class_mask,
                    "parallel labels must match sequential"
                );
            }
            let parallel_secs = host.parallel_time(serial, procs);
            Table1Row {
                processes: procs,
                parallel_secs,
                speedup: host.parallel_time(serial, 1) / parallel_secs,
                paper_speedup: paper,
                measured_secs: measured,
            }
        })
        .collect();

    Table1 {
        tiles: n,
        tile_size: side,
        per_tile_secs: per_tile,
        reference_label_secs,
        fused_label_secs,
        fused_speedup: reference_label_secs / fused_label_secs,
        paper_workload_serial_secs: per_tile * 4224.0,
        rows,
    }
}

impl Table1 {
    /// The `BENCH_label.json` perf-trajectory summary. Wall-time metrics
    /// carry loose tolerances (host-to-host jitter must not flag); the
    /// simulated speedup is tighter because the host model is
    /// deterministic.
    pub fn summary(&self) -> seaice_obs::bench::Summary {
        let sim_speedup_8p = self.rows.last().map_or(0.0, |r| r.speedup);
        seaice_obs::bench::Summary::new("label")
            .metric("per_tile_ms", self.per_tile_secs * 1e3, "ms", false, 0.5)
            .metric(
                "fused_label_ms",
                self.fused_label_secs * 1e3,
                "ms",
                false,
                0.5,
            )
            .metric("fused_speedup", self.fused_speedup, "x", true, 0.5)
            .metric("sim_speedup_8p", sim_speedup_8p, "x", true, 0.25)
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "TABLE I: Multiprocessing-style auto-labeling ({} tiles of {}x{}, measured {:.2} ms/tile)\n",
            self.tiles,
            self.tile_size,
            self.tile_size,
            self.per_tile_secs * 1e3
        ));
        s.push_str(&format!(
            "paper-scale serial estimate (4224 tiles): {:.2} s  [paper: 17.40 s]\n",
            self.paper_workload_serial_secs
        ));
        s.push_str(&format!(
            "fused segmentation: {:.3} ms/tile vs reference {:.3} ms/tile ({:.1}x speedup)\n",
            self.fused_label_secs * 1e3,
            self.reference_label_secs * 1e3,
            self.fused_speedup
        ));
        s.push_str("procs | sim parallel s | sim speedup | paper speedup | host measured s\n");
        for r in &self.rows {
            s.push_str(&format!(
                "{:>5} | {:>14.2} | {:>11.2} | {:>13.2} | {:>15.3}\n",
                r.processes, r.parallel_secs, r.speedup, r.paper_speedup, r.measured_secs
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let t = run(Scale::Small);
        assert_eq!(t.rows.len(), 5);
        assert!((t.rows[0].speedup - 1.0).abs() < 1e-9);
        for (row, &(procs, paper)) in t.rows.iter().zip(&PAPER_SPEEDUPS) {
            assert_eq!(row.processes, procs);
            assert!(
                (row.speedup - paper).abs() / paper < 0.1,
                "{procs} procs: simulated {:.2} vs paper {paper}",
                row.speedup
            );
        }
        // Speedup is monotone and saturates below 5 (HT limit).
        assert!(t.rows.windows(2).all(|w| w[1].speedup >= w[0].speedup));
        assert!(t.rows[4].speedup < 5.0);
        // Both backends were really measured; the ratio is only asserted
        // loosely here because debug-mode timings are noisy.
        assert!(t.reference_label_secs > 0.0 && t.fused_label_secs > 0.0);
        assert!(t.fused_speedup.is_finite() && t.fused_speedup > 0.0);
        assert!(t.render().contains("TABLE I"));
    }
}
