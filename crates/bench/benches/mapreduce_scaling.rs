//! Criterion benchmark behind Table II: the mini-map-reduce engine's
//! measured end-to-end cost across cluster shapes (simulated times are
//! the `reproduce table2` output; this measures the engine itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seaice_mapreduce::{ClusterSpec, CostModel, Session};
use std::hint::black_box;

/// A deterministic CPU-bound task standing in for one tile's labeling.
fn spin(x: u64) -> u64 {
    let mut acc = x;
    for i in 0..5_000u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapreduce");
    g.sample_size(10);

    for &(e, cores) in &[(1usize, 1usize), (1, 4), (4, 4)] {
        g.bench_with_input(
            BenchmarkId::new("load_map_collect_256tasks", format!("{e}x{cores}")),
            &(e, cores),
            |b, &(e, cores)| {
                b.iter(|| {
                    let session =
                        Session::new(ClusterSpec::new(e, cores).unwrap(), CostModel::gcd_n2());
                    let (df, _) = session.read((0..256u64).collect::<Vec<_>>(), 8.0);
                    let (lazy, _) = df.map(&session, spin);
                    let (out, _) = lazy.collect(&session, 8.0);
                    black_box(out)
                })
            },
        );
    }

    g.bench_function("session_startup_4x4", |b| {
        b.iter(|| {
            black_box(Session::new(
                ClusterSpec::new(4, 4).unwrap(),
                CostModel::gcd_n2(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
