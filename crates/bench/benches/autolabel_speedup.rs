//! Criterion benchmark behind Table I: the per-tile auto-label cost
//! (filtered vs unfiltered) and batch dispatch through the worker pool
//! and rayon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seaice_bench::workloads::labeling_tiles;
use seaice_label::autolabel::{
    auto_label, auto_label_batch_pool, auto_label_batch_rayon, AutoLabelConfig, LabelBackend,
};
use seaice_label::parallel::WorkerPool;
use std::hint::black_box;

fn bench_autolabel(c: &mut Criterion) {
    let mut g = c.benchmark_group("autolabel");
    g.sample_size(10);

    for side in [64usize, 128, 256] {
        let tiles = labeling_tiles(1, side, 7);
        g.bench_with_input(
            BenchmarkId::new("filtered_tile", side),
            &side,
            |b, &side| {
                let cfg = AutoLabelConfig::filtered_for_tile(side);
                b.iter(|| black_box(auto_label(&tiles[0], &cfg)))
            },
        );
        g.bench_with_input(BenchmarkId::new("unfiltered_tile", side), &side, |b, _| {
            let cfg = AutoLabelConfig::unfiltered();
            b.iter(|| black_box(auto_label(&tiles[0], &cfg)))
        });
        // Backend comparison on the unfiltered path, where segmentation
        // dominates — this is the fused kernel's headline number.
        for backend in [LabelBackend::Reference, LabelBackend::Fused] {
            g.bench_with_input(
                BenchmarkId::new(format!("unfiltered_tile_{backend:?}"), side),
                &side,
                |b, _| {
                    let cfg = AutoLabelConfig::unfiltered().with_backend(backend);
                    b.iter(|| black_box(auto_label(&tiles[0], &cfg)))
                },
            );
        }
    }

    // Batch dispatch overhead comparison at a fixed small workload.
    let tiles = labeling_tiles(16, 64, 9);
    let cfg = AutoLabelConfig::filtered_for_tile(64);
    for workers in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("pool_batch16_64px", workers),
            &workers,
            |b, &w| {
                let pool = WorkerPool::new(w);
                b.iter(|| black_box(auto_label_batch_pool(&pool, tiles.clone(), cfg)))
            },
        );
    }
    g.bench_function("rayon_batch16_64px", |b| {
        b.iter(|| black_box(auto_label_batch_rayon(&tiles, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_autolabel);
criterion_main!(benches);
