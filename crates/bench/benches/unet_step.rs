//! Criterion benchmark of the U-Net training primitives: forward,
//! forward+backward+Adam, and inference at CPU-scale geometry.

use criterion::{criterion_group, criterion_main, Criterion};
use seaice_nn::init::uniform;
use seaice_nn::loss::softmax_cross_entropy;
use seaice_nn::optim::{Adam, Optimizer};
use seaice_unet::{UNet, UNetConfig};
use std::hint::black_box;

fn bench_unet(c: &mut Criterion) {
    let cfg = UNetConfig {
        depth: 2,
        base_filters: 8,
        dropout: 0.1,
        seed: 1,
        ..UNetConfig::paper()
    };
    let x = uniform(&[4, 3, 32, 32], 0.0, 1.0, 2);
    let targets: Vec<u8> = (0..4 * 32 * 32).map(|i| (i % 3) as u8).collect();

    let mut g = c.benchmark_group("unet_32px_batch4");
    g.sample_size(10);

    g.bench_function("forward_eval", |b| {
        let mut net = UNet::new(cfg);
        b.iter(|| black_box(net.forward(&x, false)))
    });

    g.bench_function("train_step", |b| {
        let mut net = UNet::new(cfg);
        let mut adam = Adam::new(1e-3);
        b.iter(|| {
            net.zero_grads();
            let logits = net.forward(&x, true);
            let lo = softmax_cross_entropy(&logits, &targets);
            net.backward(&lo.grad);
            adam.step(&mut net.params_mut());
            black_box(lo.loss)
        })
    });

    g.bench_function("predict", |b| {
        let mut net = UNet::new(cfg);
        b.iter(|| black_box(net.predict(&x)))
    });
    g.finish();
}

criterion_group!(benches, bench_unet);
criterion_main!(benches);
