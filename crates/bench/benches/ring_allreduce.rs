//! Criterion benchmark behind Table III's communication layer: ring
//! all-reduce latency across rank counts and buffer sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use seaice_distrib::ProcessGroup;
use std::hint::black_box;

fn run_allreduce(ranks: usize, len: usize) -> f32 {
    let group = ProcessGroup::new(ranks);
    let handles: Vec<_> = group
        .into_iter()
        .map(|rank| {
            std::thread::spawn(move || {
                let mut buf = vec![rank.rank() as f32 + 1.0; len];
                rank.all_reduce_mean(&mut buf);
                buf[0]
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_allreduce");
    g.sample_size(10);
    for ranks in [2usize, 4, 8] {
        for len in [1024usize, 65_536] {
            g.throughput(Throughput::Bytes((len * 4) as u64));
            g.bench_with_input(
                BenchmarkId::new(format!("ranks{ranks}"), len),
                &(ranks, len),
                |b, &(ranks, len)| b.iter(|| black_box(run_allreduce(ranks, len))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
