//! Criterion micro-benchmarks of the imaging substrate's hot kernels at
//! the paper's tile size (256×256).

use criterion::{criterion_group, criterion_main, Criterion};
use seaice_imgproc::color::{rgb_to_gray, rgb_to_hsv};
use seaice_imgproc::filter::{box_blur_f32, gaussian_blur, median_filter};
use seaice_imgproc::ops::{in_range, min_max_normalize};
use seaice_imgproc::threshold::otsu_threshold;
use seaice_label::fused::segment_classes_fused;
use seaice_label::ranges::ClassRanges;
use seaice_label::segment::segment_classes;
use seaice_s2::synth::{generate, SceneConfig};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let scene = generate(&SceneConfig::tiny(256), 42);
    let rgb = scene.rgb;
    let gray = rgb_to_gray(&rgb);
    let gray_f = gray.to_f32();

    let mut g = c.benchmark_group("imgproc_256");
    g.sample_size(20);
    g.bench_function("rgb_to_hsv", |b| b.iter(|| black_box(rgb_to_hsv(&rgb))));
    g.bench_function("rgb_to_gray", |b| b.iter(|| black_box(rgb_to_gray(&rgb))));
    g.bench_function("gaussian_blur_r2", |b| {
        b.iter(|| black_box(gaussian_blur(&rgb, 2, 1.0)))
    });
    g.bench_function("median_filter_r1", |b| {
        b.iter(|| black_box(median_filter(&rgb, 1)))
    });
    g.bench_function("box_blur_f32_r32", |b| {
        b.iter(|| black_box(box_blur_f32(&gray_f, 32)))
    });
    g.bench_function("otsu_threshold", |b| {
        b.iter(|| black_box(otsu_threshold(&gray)))
    });
    g.bench_function("in_range_hsv", |b| {
        let hsv = rgb_to_hsv(&rgb);
        b.iter(|| black_box(in_range(&hsv, &[0, 0, 205], &[185, 255, 255])))
    });
    g.bench_function("min_max_normalize", |b| {
        b.iter(|| black_box(min_max_normalize(&gray, 0, 255)))
    });
    // The fused single-pass kernel vs the reference pipeline it replaces
    // (rgb_to_hsv + three in_range scans + fallback).
    let ranges = ClassRanges::paper();
    g.bench_function("segment_classes_reference", |b| {
        b.iter(|| black_box(segment_classes(&rgb, &ranges)))
    });
    g.bench_function("segment_classes_fused", |b| {
        b.iter(|| black_box(segment_classes_fused(&rgb, &ranges)))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
