//! Request-latency accounting for the serving layer: a fixed-size
//! log-spaced histogram over microseconds, cheap to record into and cheap
//! to merge, with the quantile readouts (p50/p95/p99) an operator watches
//! on a serving dashboard.
//!
//! The bucket layout is geometric: bucket `i` covers
//! `[floor(GROWTH^i), floor(GROWTH^(i+1)))` µs with `GROWTH = 1.35`, so
//! relative quantile error is bounded by ~35 % of one bucket width —
//! plenty for a latency table — while 64 buckets span 1 µs to beyond an
//! hour. Recording is O(buckets) in the worst case (a short upward scan),
//! with a running exact count/sum/min/max kept alongside.

use serde::{Deserialize, Serialize};

/// Geometric growth factor between bucket edges.
const GROWTH: f64 = 1.35;
/// Number of histogram buckets (the last one is open-ended).
const BUCKETS: usize = 64;

/// A log-spaced latency histogram over microseconds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Lower edge (inclusive, in µs) of bucket `i`.
fn bucket_floor(i: usize) -> u64 {
    GROWTH.powi(i as i32).floor() as u64
}

/// Bucket index holding a `us` microsecond observation.
fn bucket_of(us: u64) -> usize {
    // Buckets 0 and 1 both floor to 1 µs; start the scan at the analytic
    // guess and walk to the covering bucket.
    let mut i = if us == 0 {
        0
    } else {
        ((us as f64).ln() / GROWTH.ln()).floor() as usize
    };
    i = i.min(BUCKETS - 1);
    while i + 1 < BUCKETS && bucket_floor(i + 1) <= us {
        i += 1;
    }
    while i > 0 && bucket_floor(i) > us {
        i -= 1;
    }
    i
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// Records one observation, in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Records one observation from a [`std::time::Duration`].
    pub fn record(&mut self, d: std::time::Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Smallest recorded value in microseconds (0 when empty).
    pub fn min_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// Largest recorded value in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The `q`-quantile (`q` in `[0, 1]`) in microseconds: the lower edge
    /// of the bucket containing the `ceil(q·count)`-th observation,
    /// clamped to the exact observed min/max so p0/p100 are truthful.
    ///
    /// Returns 0 when the histogram is empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i).clamp(self.min_us, self.max_us);
            }
        }
        self.max_us
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Condenses the histogram into the snapshot a stats endpoint serves.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count,
            mean_us: self.mean_us(),
            min_us: self.min_us(),
            p50_us: self.quantile_us(0.50),
            p95_us: self.quantile_us(0.95),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us,
        }
    }
}

/// A point-in-time latency summary (what `GET /stats` reports).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Minimum, µs.
    pub min_us: u64,
    /// Median, µs.
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Maximum, µs.
    pub max_us: u64,
}

impl LatencySnapshot {
    /// Throughput in requests/second given the wall time that produced
    /// this snapshot.
    pub fn throughput(&self, wall: std::time::Duration) -> f64 {
        let s = wall.as_secs_f64();
        if s > 0.0 {
            self.count as f64 / s
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_axis() {
        // Every value lands in exactly the bucket whose range covers it.
        for us in [0u64, 1, 2, 3, 10, 99, 1000, 123_456, 10_000_000] {
            let i = bucket_of(us);
            assert!(bucket_floor(i) <= us || i == 0, "floor({i}) > {us}");
            if i + 1 < BUCKETS {
                assert!(bucket_floor(i + 1) > us, "bucket {i} too low for {us}");
            }
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!(s.min_us <= s.p50_us && s.p50_us <= s.p95_us);
        assert!(s.p95_us <= s.p99_us && s.p99_us <= s.max_us);
        assert_eq!(s.max_us, 1000);
        // p50 of a uniform 1..=1000 sample sits near 500 (within one
        // geometric bucket: ±35 %).
        assert!(s.p50_us >= 350 && s.p50_us <= 700, "p50 {}", s.p50_us);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for us in [5u64, 50, 500, 5000] {
            a.record_us(us);
            whole.record_us(us);
        }
        for us in [7u64, 70, 700] {
            b.record_us(us);
            whole.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.quantile_us(0.5), whole.quantile_us(0.5));
        assert_eq!(a.max_us(), whole.max_us());
        assert_eq!(a.min_us(), whole.min_us());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.min_us, 0);
        assert_eq!(s.throughput(std::time::Duration::from_secs(1)), 0.0);
    }

    #[test]
    fn single_observation_pins_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record_us(1234);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 1234);
        }
        assert_eq!(h.mean_us(), 1234.0);
    }
}
