//! Request-latency accounting for the serving layer: a fixed-size
//! log-spaced histogram over microseconds, cheap to record into and cheap
//! to merge, with the quantile readouts (p50/p95/p99) an operator watches
//! on a serving dashboard.
//!
//! The bucket layout is geometric: bucket `i` covers
//! `[floor(GROWTH^i), floor(GROWTH^(i+1)))` µs with `GROWTH = 1.35`, so
//! relative quantile error is bounded by ~35 % of one bucket width —
//! plenty for a latency table — while 64 buckets span 1 µs to beyond an
//! hour. Recording is O(buckets) in the worst case (a short upward scan),
//! with a running exact count/sum/min/max kept alongside.

use serde::{Deserialize, Serialize};

/// Geometric growth factor between bucket edges.
const GROWTH: f64 = 1.35;
/// Number of histogram buckets (the last one is open-ended).
const BUCKETS: usize = 64;

/// A log-spaced latency histogram over microseconds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Lower edge (inclusive, in µs) of bucket `i`.
fn bucket_floor(i: usize) -> u64 {
    GROWTH.powi(i as i32).floor() as u64
}

/// Bucket index holding a `us` microsecond observation.
fn bucket_of(us: u64) -> usize {
    // Buckets 0 and 1 both floor to 1 µs; start the scan at the analytic
    // guess and walk to the covering bucket.
    let mut i = if us == 0 {
        0
    } else {
        ((us as f64).ln() / GROWTH.ln()).floor() as usize
    };
    i = i.min(BUCKETS - 1);
    while i + 1 < BUCKETS && bucket_floor(i + 1) <= us {
        i += 1;
    }
    while i > 0 && bucket_floor(i) > us {
        i -= 1;
    }
    i
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// Records one observation, in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Records one observation from a [`std::time::Duration`].
    pub fn record(&mut self, d: std::time::Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of every recorded observation, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// The non-empty buckets, lowest first — what `GET /stats` exposes so
    /// external scrapers can compute their own quantiles instead of
    /// trusting the server's p50/p95/p99 picks.
    ///
    /// Ranges are strictly ordered and non-overlapping: `bucket_of`
    /// always picks the highest index sharing a floor (the bottom few
    /// geometric floors collide at 1 µs), so a non-empty bucket's floor
    /// is always below its successor's. Bucket 0 reports `[0, 1)` — it
    /// only ever holds 0 µs observations.
    pub fn bucket_counts(&self) -> Vec<BucketCount> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| BucketCount {
                floor_us: if i == 0 { 0 } else { bucket_floor(i) },
                upper_us: if i + 1 < BUCKETS {
                    bucket_floor(i + 1)
                } else {
                    u64::MAX
                },
                count: c,
            })
            .collect()
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Smallest recorded value in microseconds (0 when empty).
    pub fn min_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// Largest recorded value in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The `q`-quantile (`q` in `[0, 1]`) in microseconds: the lower edge
    /// of the bucket containing the `ceil(q·count)`-th observation,
    /// clamped to the exact observed min/max so p0/p100 are truthful.
    ///
    /// Returns 0 when the histogram is empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i).clamp(self.min_us, self.max_us);
            }
        }
        self.max_us
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Condenses the histogram into the snapshot a stats endpoint serves.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count,
            mean_us: self.mean_us(),
            min_us: self.min_us(),
            p50_us: self.quantile_us(0.50),
            p95_us: self.quantile_us(0.95),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us,
        }
    }
}

/// One non-empty histogram bucket: the half-open range
/// `[floor_us, upper_us)` and its observation count. The last bucket is
/// open-ended (`upper_us == u64::MAX`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive lower edge, µs.
    pub floor_us: u64,
    /// Exclusive upper edge, µs (`u64::MAX` for the open-ended tail).
    pub upper_us: u64,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// A point-in-time latency summary (what `GET /stats` reports).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Minimum, µs.
    pub min_us: u64,
    /// Median, µs.
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Maximum, µs.
    pub max_us: u64,
}

impl LatencySnapshot {
    /// Throughput in requests/second given the wall time that produced
    /// this snapshot.
    pub fn throughput(&self, wall: std::time::Duration) -> f64 {
        let s = wall.as_secs_f64();
        if s > 0.0 {
            self.count as f64 / s
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_axis() {
        // Every value lands in exactly the bucket whose range covers it.
        for us in [0u64, 1, 2, 3, 10, 99, 1000, 123_456, 10_000_000] {
            let i = bucket_of(us);
            assert!(bucket_floor(i) <= us || i == 0, "floor({i}) > {us}");
            if i + 1 < BUCKETS {
                assert!(bucket_floor(i + 1) > us, "bucket {i} too low for {us}");
            }
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!(s.min_us <= s.p50_us && s.p50_us <= s.p95_us);
        assert!(s.p95_us <= s.p99_us && s.p99_us <= s.max_us);
        assert_eq!(s.max_us, 1000);
        // p50 of a uniform 1..=1000 sample sits near 500 (within one
        // geometric bucket: ±35 %).
        assert!(s.p50_us >= 350 && s.p50_us <= 700, "p50 {}", s.p50_us);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for us in [5u64, 50, 500, 5000] {
            a.record_us(us);
            whole.record_us(us);
        }
        for us in [7u64, 70, 700] {
            b.record_us(us);
            whole.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.quantile_us(0.5), whole.quantile_us(0.5));
        assert_eq!(a.max_us(), whole.max_us());
        assert_eq!(a.min_us(), whole.min_us());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.min_us, 0);
        assert_eq!(s.throughput(std::time::Duration::from_secs(1)), 0.0);
    }

    #[test]
    fn bucket_of_zero_lands_in_the_first_bucket() {
        assert_eq!(bucket_of(0), 0);
        let mut h = LatencyHistogram::new();
        h.record_us(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min_us(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
    }

    #[test]
    fn bucket_of_is_exact_at_every_bucket_floor_edge() {
        // At an exact floor the observation belongs to that bucket
        // (floors are inclusive lower edges), and one µs below an edge
        // belongs to the bucket before it — for every distinct edge.
        for i in 0..BUCKETS {
            let floor = bucket_floor(i);
            let at = bucket_of(floor);
            assert!(
                bucket_floor(at) <= floor && (at + 1 == BUCKETS || bucket_floor(at + 1) > floor),
                "floor({i}) = {floor} landed in bucket {at}"
            );
            if i > 0 && floor > bucket_floor(i - 1) {
                let below = bucket_of(floor - 1);
                assert!(
                    below < i,
                    "edge {floor}: {floor}-1 landed in bucket {below}"
                );
                assert!(
                    bucket_floor(below + 1) > floor - 1,
                    "edge {floor}: bucket {below} does not cover {}",
                    floor - 1
                );
            }
        }
    }

    #[test]
    fn u64_max_clamps_into_the_open_ended_last_bucket() {
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        let mut h = LatencyHistogram::new();
        h.record_us(u64::MAX);
        assert_eq!(h.max_us(), u64::MAX);
        assert_eq!(h.quantile_us(1.0), u64::MAX);
        let buckets = h.bucket_counts();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].upper_us, u64::MAX);
        // A Duration too large for u64 µs takes the same clamped path.
        let mut d = LatencyHistogram::new();
        d.record(std::time::Duration::MAX);
        assert_eq!(d.max_us(), u64::MAX);
    }

    #[test]
    fn merged_shards_quantile_like_one_histogram() {
        // Deterministic multiplicative-congruential stream, sharded
        // round-robin into 4 histograms and merged back: every quantile
        // and moment must match recording straight into one.
        let mut shards = vec![LatencyHistogram::new(); 4];
        let mut whole = LatencyHistogram::new();
        let mut x = 0x5EA1CEu64;
        for i in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let us = x % 10_000_000;
            shards[i % 4].record_us(us);
            whole.record_us(us);
        }
        let mut merged = LatencyHistogram::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.sum_us(), whole.sum_us());
        assert_eq!(merged.min_us(), whole.min_us());
        assert_eq!(merged.max_us(), whole.max_us());
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile_us(q), whole.quantile_us(q), "q={q}");
        }
        assert_eq!(merged.bucket_counts(), whole.bucket_counts());
    }

    #[test]
    fn bucket_counts_cover_exactly_the_recorded_observations() {
        let mut h = LatencyHistogram::new();
        for us in [0u64, 1, 5, 5, 700, 1_000_000] {
            h.record_us(us);
        }
        let buckets = h.bucket_counts();
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), h.count());
        for w in buckets.windows(2) {
            assert!(w[0].floor_us < w[1].floor_us, "buckets out of order");
            assert!(w[0].upper_us <= w[1].floor_us, "buckets overlap");
        }
        for b in &buckets {
            assert!(b.floor_us < b.upper_us);
        }
    }

    #[test]
    fn single_observation_pins_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record_us(1234);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 1234);
        }
        assert_eq!(h.mean_us(), 1234.0);
    }
}
