//! # seaice-metrics
//!
//! Evaluation metrics used throughout the paper's experiments:
//!
//! * [`confusion::ConfusionMatrix`] — the column-normalized confusion
//!   matrix of Fig. 13 (each column is a true class and sums to 100 %),
//! * [`classification`] — overall accuracy, per-class and macro-averaged
//!   precision / recall / F1 (Table IV),
//! * [`ssim`] — the Structural Similarity Index used to score auto-labels
//!   against manual labels (89 % / 99.64 % in §IV-B),
//! * [`latency`] — log-bucketed request-latency histogram (count, mean,
//!   p50/p95/p99) backing the serving layer's stats endpoint.
//!
//! ```
//! use seaice_metrics::{classification_report, mean_iou, ConfusionMatrix};
//!
//! let mut m = ConfusionMatrix::new(3);
//! for (pred, truth) in [(0, 0), (0, 0), (1, 1), (2, 1), (2, 2)] {
//!     m.record(pred, truth);
//! }
//! assert!((m.accuracy() - 0.8).abs() < 1e-12);
//! let report = classification_report(&m);
//! assert!(report.macro_f1 > 0.7);
//! assert!(mean_iou(&m) > 0.6);
//! ```
#![forbid(unsafe_code)]

pub mod classification;
pub mod confusion;
pub mod latency;
pub mod ssim;

pub use classification::{classification_report, dice, iou, mean_iou, ClassificationReport};
pub use confusion::ConfusionMatrix;
pub use latency::{LatencyHistogram, LatencySnapshot};
pub use ssim::{ssim, ssim_rgb};
