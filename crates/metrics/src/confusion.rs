//! Confusion-matrix accumulation and normalization.
//!
//! Following the paper's convention (§IV-A): "The number of samples
//! predicted in category A over the number of samples in category B is
//! specified as an element of the matrix in row A and column B … each
//! column adds up to a total of 100 %." Rows are predictions, columns are
//! ground truth, and normalization is per column.

use seaice_imgproc::buffer::Image;
use serde::{Deserialize, Serialize};

/// A dense confusion matrix over `n` classes. `counts[pred][truth]` is the
/// number of samples of true class `truth` predicted as `pred`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `n` classes.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one class");
        Self {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.n
    }

    /// Records one sample.
    ///
    /// # Panics
    /// Panics if either class index is out of range.
    #[inline]
    pub fn record(&mut self, pred: usize, truth: usize) {
        assert!(pred < self.n && truth < self.n, "class index out of range");
        self.counts[pred * self.n + truth] += 1;
    }

    /// Accumulates every pixel of a predicted mask against a truth mask.
    ///
    /// # Panics
    /// Panics on shape mismatch or out-of-range class values.
    pub fn record_masks(&mut self, pred: &Image<u8>, truth: &Image<u8>) {
        assert_eq!(pred.dimensions(), truth.dimensions(), "mask size mismatch");
        assert_eq!(pred.channels(), 1, "pred mask must be single-channel");
        assert_eq!(truth.channels(), 1, "truth mask must be single-channel");
        for (&p, &t) in pred.as_slice().iter().zip(truth.as_slice()) {
            self.record(p as usize, t as usize);
        }
    }

    /// Raw count at `(pred, truth)`.
    pub fn count(&self, pred: usize, truth: usize) -> u64 {
        self.counts[pred * self.n + truth]
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Column (true-class) totals.
    pub fn truth_totals(&self) -> Vec<u64> {
        (0..self.n)
            .map(|t| (0..self.n).map(|p| self.count(p, t)).sum())
            .collect()
    }

    /// Row (predicted-class) totals.
    pub fn pred_totals(&self) -> Vec<u64> {
        (0..self.n)
            .map(|p| (0..self.n).map(|t| self.count(p, t)).sum())
            .collect()
    }

    /// Merges another matrix into this one (for parallel accumulation).
    ///
    /// # Panics
    /// Panics if class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n, other.n, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Overall accuracy: diagonal mass over total.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.n).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// The paper's Fig. 13 normalization: each column (true class) scaled
    /// to sum to 1. Columns with no samples are all zeros.
    pub fn column_normalized(&self) -> Vec<Vec<f64>> {
        let totals = self.truth_totals();
        (0..self.n)
            .map(|p| {
                (0..self.n)
                    .map(|t| {
                        if totals[t] == 0 {
                            0.0
                        } else {
                            self.count(p, t) as f64 / totals[t] as f64
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Per-class accuracy (recall): the diagonal of the column-normalized
    /// matrix.
    pub fn per_class_accuracy(&self) -> Vec<f64> {
        let norm = self.column_normalized();
        (0..self.n).map(|i| norm[i][i]).collect()
    }

    /// Renders the column-normalized matrix as a small text table with
    /// class names, for harness output.
    pub fn to_table(&self, class_names: &[&str]) -> String {
        assert_eq!(class_names.len(), self.n, "class name arity mismatch");
        let norm = self.column_normalized();
        let mut s = String::new();
        s.push_str(&format!("{:>14} |", "pred \\ true"));
        for name in class_names {
            s.push_str(&format!(" {:>11}", name));
        }
        s.push('\n');
        for (p, name) in class_names.iter().enumerate() {
            s.push_str(&format!("{name:>14} |"));
            for cell in norm[p].iter().take(self.n) {
                s.push_str(&format!(" {:>10.2}%", cell * 100.0));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ConfusionMatrix {
        // truth: 0 0 0 1 1 2; pred: 0 0 1 1 1 2
        let mut m = ConfusionMatrix::new(3);
        for (p, t) in [(0, 0), (0, 0), (1, 0), (1, 1), (1, 1), (2, 2)] {
            m.record(p, t);
        }
        m
    }

    #[test]
    fn counts_and_totals() {
        let m = sample_matrix();
        assert_eq!(m.total(), 6);
        assert_eq!(m.count(0, 0), 2);
        assert_eq!(m.count(1, 0), 1);
        assert_eq!(m.truth_totals(), vec![3, 2, 1]);
        assert_eq!(m.pred_totals(), vec![2, 3, 1]);
    }

    #[test]
    fn accuracy_is_diagonal_fraction() {
        let m = sample_matrix();
        assert!((m.accuracy() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_accuracy_is_zero() {
        assert_eq!(ConfusionMatrix::new(3).accuracy(), 0.0);
    }

    #[test]
    fn columns_normalize_to_one() {
        let m = sample_matrix();
        let norm = m.column_normalized();
        for t in 0..3usize {
            let col_sum: f64 = norm.iter().take(3).map(|row| row[t]).sum();
            assert!(
                (col_sum - 1.0).abs() < 1e-12,
                "column {t} sums to {col_sum}"
            );
        }
        assert!((norm[0][0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((norm[1][0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_class_accuracy_is_diagonal() {
        let m = sample_matrix();
        let pca = m.per_class_accuracy();
        assert!((pca[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((pca[1] - 1.0).abs() < 1e-12);
        assert!((pca[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_column_stays_zero() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0);
        let norm = m.column_normalized();
        assert_eq!(norm[0][2], 0.0);
        assert_eq!(norm[2][2], 0.0);
    }

    #[test]
    fn record_masks_accumulates_pixels() {
        let pred = Image::from_vec(3, 1, 1, vec![0u8, 1, 2]);
        let truth = Image::from_vec(3, 1, 1, vec![0u8, 0, 2]);
        let mut m = ConfusionMatrix::new(3);
        m.record_masks(&pred, &truth);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(1, 0), 1);
        assert_eq!(m.count(2, 2), 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample_matrix();
        let b = sample_matrix();
        a.merge(&b);
        assert_eq!(a.total(), 12);
        assert_eq!(a.count(0, 0), 4);
    }

    #[test]
    #[should_panic(expected = "class index out of range")]
    fn out_of_range_class_panics() {
        ConfusionMatrix::new(2).record(2, 0);
    }

    #[test]
    fn table_render_contains_percentages() {
        let m = sample_matrix();
        let table = m.to_table(&["thick", "thin", "water"]);
        assert!(table.contains("thick"));
        assert!(table.contains("66.67%"));
        assert!(table.contains("100.00%"));
    }
}
