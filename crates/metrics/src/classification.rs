//! Accuracy, precision, recall, and F1 derived from a confusion matrix
//! (the Table IV metrics).

use crate::confusion::ConfusionMatrix;
use serde::{Deserialize, Serialize};

/// Per-class and aggregate classification metrics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Overall accuracy.
    pub accuracy: f64,
    /// Per-class precision: `TP / (TP + FP)` (0 when the class was never
    /// predicted).
    pub precision: Vec<f64>,
    /// Per-class recall: `TP / (TP + FN)` (0 when the class never occurs).
    pub recall: Vec<f64>,
    /// Per-class F1: harmonic mean of precision and recall.
    pub f1: Vec<f64>,
    /// Macro-averaged precision (unweighted class mean).
    pub macro_precision: f64,
    /// Macro-averaged recall.
    pub macro_recall: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
}

/// Computes the full report from an accumulated confusion matrix.
pub fn classification_report(m: &ConfusionMatrix) -> ClassificationReport {
    let n = m.num_classes();
    let pred_totals = m.pred_totals();
    let truth_totals = m.truth_totals();

    let mut precision = Vec::with_capacity(n);
    let mut recall = Vec::with_capacity(n);
    let mut f1 = Vec::with_capacity(n);
    for c in 0..n {
        let tp = m.count(c, c) as f64;
        let p = if pred_totals[c] == 0 {
            0.0
        } else {
            tp / pred_totals[c] as f64
        };
        let r = if truth_totals[c] == 0 {
            0.0
        } else {
            tp / truth_totals[c] as f64
        };
        let f = if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        };
        precision.push(p);
        recall.push(r);
        f1.push(f);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    ClassificationReport {
        accuracy: m.accuracy(),
        macro_precision: mean(&precision),
        macro_recall: mean(&recall),
        macro_f1: mean(&f1),
        precision,
        recall,
        f1,
    }
}

/// Per-class intersection-over-union (Jaccard index) from a confusion
/// matrix: `IoU_c = TP / (TP + FP + FN)`. Absent classes score 0.
pub fn iou(m: &ConfusionMatrix) -> Vec<f64> {
    let n = m.num_classes();
    let pred_totals = m.pred_totals();
    let truth_totals = m.truth_totals();
    (0..n)
        .map(|c| {
            let tp = m.count(c, c) as f64;
            let union = pred_totals[c] as f64 + truth_totals[c] as f64 - tp;
            if union == 0.0 {
                0.0
            } else {
                tp / union
            }
        })
        .collect()
}

/// Mean IoU over classes (the standard segmentation summary metric).
pub fn mean_iou(m: &ConfusionMatrix) -> f64 {
    let v = iou(m);
    v.iter().sum::<f64>() / v.len() as f64
}

/// Per-class Dice coefficient: `2·TP / (2·TP + FP + FN)` — equivalent to
/// the per-class F1 computed from pixel counts.
pub fn dice(m: &ConfusionMatrix) -> Vec<f64> {
    iou(m)
        .into_iter()
        .map(|j| if j == 0.0 { 0.0 } else { 2.0 * j / (1.0 + j) })
        .collect()
}

impl ClassificationReport {
    /// Renders a compact single-line summary (`acc/P/R/F1` in percent).
    pub fn summary(&self) -> String {
        format!(
            "accuracy {:.2}%  precision {:.2}%  recall {:.2}%  F1 {:.2}%",
            self.accuracy * 100.0,
            self.macro_precision * 100.0,
            self.macro_recall * 100.0,
            self.macro_f1 * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(entries: &[(usize, usize)]) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(3);
        for &(p, t) in entries {
            m.record(p, t);
        }
        m
    }

    #[test]
    fn perfect_classifier_scores_one() {
        let m = matrix(&[(0, 0), (1, 1), (2, 2), (0, 0)]);
        let r = classification_report(&m);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.macro_precision, 1.0);
        assert_eq!(r.macro_recall, 1.0);
        assert_eq!(r.macro_f1, 1.0);
    }

    #[test]
    fn precision_and_recall_differ_correctly() {
        // Class 0: 2 TP, 1 FP (pred 0 truth 1), 1 FN (pred 1 truth 0).
        let m = matrix(&[(0, 0), (0, 0), (0, 1), (1, 0), (2, 2)]);
        let r = classification_report(&m);
        assert!((r.precision[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.recall[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.f1[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn absent_class_gets_zero_not_nan() {
        let m = matrix(&[(0, 0), (1, 1)]); // class 2 never appears
        let r = classification_report(&m);
        assert_eq!(r.precision[2], 0.0);
        assert_eq!(r.recall[2], 0.0);
        assert_eq!(r.f1[2], 0.0);
        assert!(r.macro_f1.is_finite());
    }

    #[test]
    fn f1_is_harmonic_mean() {
        // Build precision 1.0, recall 0.5 for class 0:
        // 1 TP, 0 FP, 1 FN.
        let m = matrix(&[(0, 0), (1, 0), (1, 1)]);
        let r = classification_report(&m);
        assert!((r.precision[0] - 1.0).abs() < 1e-12);
        assert!((r.recall[0] - 0.5).abs() < 1e-12);
        assert!((r.f1[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn iou_of_perfect_prediction_is_one() {
        let m = matrix(&[(0, 0), (1, 1), (2, 2)]);
        assert_eq!(iou(&m), vec![1.0, 1.0, 1.0]);
        assert_eq!(mean_iou(&m), 1.0);
        assert_eq!(dice(&m), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn iou_counts_fp_and_fn_in_the_union() {
        // Class 0: TP=2, FP=1 (pred 0 truth 1), FN=1 (pred 1 truth 0).
        let m = matrix(&[(0, 0), (0, 0), (0, 1), (1, 0)]);
        let j = iou(&m);
        assert!((j[0] - 2.0 / 4.0).abs() < 1e-12);
        // Dice = 2J/(1+J).
        let d = dice(&m);
        assert!((d[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn absent_class_iou_is_zero() {
        let m = matrix(&[(0, 0)]);
        assert_eq!(iou(&m)[2], 0.0);
        assert_eq!(dice(&m)[2], 0.0);
        assert!(mean_iou(&m).is_finite());
    }

    #[test]
    fn iou_never_exceeds_recall_or_precision() {
        let m = matrix(&[(0, 0), (0, 0), (0, 1), (1, 0), (2, 2), (1, 1)]);
        let r = classification_report(&m);
        for (c, &j) in iou(&m).iter().enumerate() {
            assert!(j <= r.precision[c] + 1e-12);
            assert!(j <= r.recall[c] + 1e-12);
        }
    }

    #[test]
    fn summary_mentions_all_metrics() {
        let m = matrix(&[(0, 0), (1, 1), (2, 2)]);
        let s = classification_report(&m).summary();
        assert!(s.contains("accuracy 100.00%"));
        assert!(s.contains("F1 100.00%"));
    }
}
