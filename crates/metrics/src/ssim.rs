//! Structural Similarity Index (SSIM), the metric the paper uses to score
//! auto-labeled images against manual labels (89 % on original imagery,
//! 99.64 % after cloud/shadow filtering).
//!
//! This is the standard Wang et al. 2004 formulation: local means,
//! variances, and covariance under an 11×11 Gaussian window (σ = 1.5), with
//! stabilizers `C1 = (0.01 L)²`, `C2 = (0.03 L)²` for dynamic range
//! `L = 255`, averaged over the image (mean SSIM).

use seaice_imgproc::buffer::Image;
use seaice_imgproc::filter::gaussian_kernel;

const C1: f64 = (0.01 * 255.0) * (0.01 * 255.0);
const C2: f64 = (0.03 * 255.0) * (0.03 * 255.0);

/// Separable Gaussian filter over an `f64` plane with replicated borders.
fn gaussian_f64(src: &[f64], w: usize, h: usize, kernel: &[f32]) -> Vec<f64> {
    let radius = kernel.len() / 2;
    let mut tmp = vec![0f64; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0f64;
            for (i, &kv) in kernel.iter().enumerate() {
                let sx = (x + i).saturating_sub(radius).min(w - 1);
                acc += kv as f64 * src[y * w + sx];
            }
            tmp[y * w + x] = acc;
        }
    }
    let mut out = vec![0f64; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0f64;
            for (i, &kv) in kernel.iter().enumerate() {
                let sy = (y + i).saturating_sub(radius).min(h - 1);
                acc += kv as f64 * tmp[sy * w + x];
            }
            out[y * w + x] = acc;
        }
    }
    out
}

fn ssim_plane(a: &[f64], b: &[f64], w: usize, h: usize) -> f64 {
    // Shrink the window for tiny images so the filter stays meaningful.
    let radius = 5.min(w.saturating_sub(1) / 2).min(h.saturating_sub(1) / 2);
    let kernel = gaussian_kernel(radius, 1.5);

    let mu_a = gaussian_f64(a, w, h, &kernel);
    let mu_b = gaussian_f64(b, w, h, &kernel);
    let aa: Vec<f64> = a.iter().map(|&v| v * v).collect();
    let bb: Vec<f64> = b.iter().map(|&v| v * v).collect();
    let ab: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x * y).collect();
    let mu_aa = gaussian_f64(&aa, w, h, &kernel);
    let mu_bb = gaussian_f64(&bb, w, h, &kernel);
    let mu_ab = gaussian_f64(&ab, w, h, &kernel);

    let mut sum = 0f64;
    for i in 0..w * h {
        let ma = mu_a[i];
        let mb = mu_b[i];
        // No clamping: keeping the tiny negative residue lets variance and
        // covariance cancel exactly for identical inputs, so ssim(x, x) = 1.
        let var_a = mu_aa[i] - ma * ma;
        let var_b = mu_bb[i] - mb * mb;
        let cov = mu_ab[i] - ma * mb;
        let s = ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
            / ((ma * ma + mb * mb + C1) * (var_a + var_b + C2));
        sum += s;
    }
    sum / (w * h) as f64
}

/// Mean SSIM between two single-channel 8-bit images.
///
/// Identical images score exactly 1.0; the score decreases with structural
/// difference and is bounded above by 1.
///
/// # Panics
/// Panics on shape mismatch, non-single-channel input, or empty images.
pub fn ssim(a: &Image<u8>, b: &Image<u8>) -> f64 {
    assert_eq!(a.dimensions(), b.dimensions(), "image size mismatch");
    assert_eq!(a.channels(), 1, "ssim expects single-channel images");
    assert_eq!(b.channels(), 1, "ssim expects single-channel images");
    let (w, h) = a.dimensions();
    assert!(w > 0 && h > 0, "ssim of an empty image");
    let af: Vec<f64> = a.as_slice().iter().map(|&v| v as f64).collect();
    let bf: Vec<f64> = b.as_slice().iter().map(|&v| v as f64).collect();
    ssim_plane(&af, &bf, w, h)
}

/// Mean SSIM between two RGB images: per-channel SSIM averaged, which is
/// how multi-channel label images are compared.
///
/// # Panics
/// Panics on shape mismatch or non-3-channel input.
pub fn ssim_rgb(a: &Image<u8>, b: &Image<u8>) -> f64 {
    assert_eq!(a.dimensions(), b.dimensions(), "image size mismatch");
    assert_eq!(a.channels(), 3, "ssim_rgb expects RGB images");
    assert_eq!(b.channels(), 3, "ssim_rgb expects RGB images");
    (0..3)
        .map(|c| ssim(&a.extract_channel(c), &b.extract_channel(c)))
        .sum::<f64>()
        / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(side: usize) -> Image<u8> {
        Image::from_fn(side, side, 1, |x, y| vec![((x * 7 + y * 3) % 256) as u8])
    }

    #[test]
    fn identical_images_score_one() {
        let img = gradient(32);
        let s = ssim(&img, &img);
        assert!((s - 1.0).abs() < 1e-5, "ssim(x,x) = {s}");
    }

    #[test]
    fn inverted_image_scores_low() {
        let img = gradient(32);
        let inv = img.map(|v| 255 - v);
        let s = ssim(&img, &inv);
        assert!(s < 0.3, "anti-correlated images should score low, got {s}");
    }

    #[test]
    fn small_noise_scores_high_but_below_one() {
        let img = gradient(32);
        let noisy = Image::from_fn(32, 32, 1, |x, y| {
            let v = img.get(x, y) as i32 + if (x + y) % 7 == 0 { 4 } else { 0 };
            vec![v.clamp(0, 255) as u8]
        });
        let s = ssim(&img, &noisy);
        assert!(s > 0.9 && s < 1.0, "got {s}");
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = gradient(24);
        let b = a.map(|v| v.saturating_add(20));
        assert!((ssim(&a, &b) - ssim(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn more_distortion_scores_lower() {
        let a = gradient(32);
        let slight = a.map(|v| v.saturating_add(8));
        let heavy = a.map(|v| v.saturating_add(96));
        assert!(ssim(&a, &slight) > ssim(&a, &heavy));
    }

    #[test]
    fn rgb_variant_averages_channels() {
        let mut a = Image::<u8>::new(16, 16, 3);
        a.fill(&[200, 100, 50]);
        let s = ssim_rgb(&a, &a);
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn constant_vs_constant_uses_stabilizers() {
        let mut a = Image::<u8>::new(8, 8, 1);
        a.fill(&[100]);
        let mut b = Image::<u8>::new(8, 8, 1);
        b.fill(&[110]);
        let s = ssim(&a, &b);
        assert!(s > 0.0 && s < 1.0, "got {s}");
    }

    #[test]
    fn tiny_image_does_not_panic() {
        let a = Image::from_vec(2, 2, 1, vec![0u8, 50, 100, 150]);
        let s = ssim(&a, &a);
        assert!((s - 1.0).abs() < 1e-5);
    }
}
