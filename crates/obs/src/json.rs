//! A minimal JSON reader/writer, hand-rolled so `seaice-obs` stays free
//! of external dependencies (the same stance `seaice-lint` takes): the
//! only JSON this crate handles is its own `BENCH_*.json` summaries and
//! Chrome `trace_event` files, both of which are flat and small.
//!
//! The parser is a plain recursive-descent pass over bytes. It accepts
//! standard JSON (objects, arrays, strings with escapes, numbers, bools,
//! null) and reports errors with a byte offset. Object member order is
//! preserved (a `Vec` of pairs, not a map) so round-trips are stable.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, member order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (numbers only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str` (strings only).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as `bool` (booleans only).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements (arrays only).
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// The value's members (objects only).
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members.as_slice()),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Surrogate pairs are not worth supporting here:
                            // nothing this crate writes emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-ascii number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

/// Escapes `s` for embedding inside a JSON string literal (no quotes
/// added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` the way this crate's writers emit numbers: integers
/// without a fractional part, everything else via Rust's shortest
/// round-trip `Display`. Non-finite values (JSON has no spelling for
/// them) degrade to `0`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#)
            .expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.as_arr())
                .and_then(|a| a[2].as_f64()),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(|c| c.as_bool()),
            Some(true)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(|e| e.as_str()), Some("x\ny"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}{}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "quote\" slash\\ newline\n tab\t ctrl\u{1} snow\u{2744}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(original));
        let v = parse(&doc).expect("round-trips");
        assert_eq!(v.get("k").and_then(|k| k.as_str()), Some(original));
    }

    #[test]
    fn fmt_f64_is_stable() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-0.5), "-0.5");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(1234567.25), "1234567.25");
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""A❄""#).expect("parses");
        assert_eq!(v.as_str(), Some("A\u{2744}"));
    }
}
