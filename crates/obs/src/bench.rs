//! The machine-readable perf trajectory: every `reproduce` area writes a
//! `BENCH_<area>.json` summary in one common schema, and the comparator
//! diffs a current set of summaries against checked-in baselines,
//! flagging metrics that moved beyond their per-metric tolerance in the
//! *bad* direction (regressions only — improvements always pass).
//!
//! Schema (`seaice-bench/1`):
//!
//! ```json
//! {
//!   "schema": "seaice-bench/1",
//!   "area": "serve",
//!   "metrics": {
//!     "throughput_rps": {
//!       "value": 812.4, "unit": "req/s",
//!       "higher_is_better": true, "tolerance": 0.5
//!     }
//!   }
//! }
//! ```
//!
//! Tolerances are relative: a metric regresses when it crosses
//! `tolerance * max(|baseline|, 1)` past the baseline in its bad
//! direction. Wall-time metrics carry loose tolerances (0.5 → a 2×
//! latency regression is flagged, host-to-host jitter is not); exactness
//! claims like `bit_identical` carry tolerance 0 and must not move at
//! all.

use crate::json::{escape, fmt_f64, parse, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The schema tag every summary carries.
pub const SCHEMA: &str = "seaice-bench/1";

/// One benchmark metric: a value plus the metadata the comparator needs.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// The measured value.
    pub value: f64,
    /// Human-readable unit (`"req/s"`, `"ms"`, `"x"`, `"bool"`).
    pub unit: String,
    /// Which direction is good.
    pub higher_is_better: bool,
    /// Relative tolerance before a bad-direction move counts as a
    /// regression (0 = must not move at all).
    pub tolerance: f64,
}

/// A complete `BENCH_<area>.json` payload.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// The reproduce area (`"label"`, `"serve"`, `"chaos"`, `"infer"`).
    pub area: String,
    /// Metrics by name, deterministically ordered.
    pub metrics: BTreeMap<String, Metric>,
}

impl Summary {
    /// An empty summary for `area`.
    pub fn new(area: &str) -> Self {
        Summary {
            area: area.to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Adds a metric (builder style).
    pub fn metric(
        mut self,
        name: &str,
        value: f64,
        unit: &str,
        higher_is_better: bool,
        tolerance: f64,
    ) -> Self {
        self.metrics.insert(
            name.to_string(),
            Metric {
                value,
                unit: unit.to_string(),
                higher_is_better,
                tolerance,
            },
        );
        self
    }

    /// The canonical file name: `BENCH_<area>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.area)
    }

    /// Renders the summary as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema\": \"{}\",", escape(SCHEMA));
        let _ = writeln!(s, "  \"area\": \"{}\",", escape(&self.area));
        s.push_str("  \"metrics\": {");
        for (i, (name, m)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    \"{}\": {{\"value\": {}, \"unit\": \"{}\", \"higher_is_better\": {}, \"tolerance\": {}}}",
                escape(name),
                fmt_f64(m.value),
                escape(&m.unit),
                m.higher_is_better,
                fmt_f64(m.tolerance)
            );
        }
        if !self.metrics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Parses a summary, rejecting unknown schemas and shape errors.
    pub fn from_json(src: &str) -> Result<Summary, String> {
        let doc = parse(src)?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing `schema`".to_string())?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema `{schema}` (want `{SCHEMA}`)"));
        }
        let area = doc
            .get("area")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing `area`".to_string())?;
        let members = doc
            .get("metrics")
            .and_then(Value::as_obj)
            .ok_or_else(|| "missing `metrics` object".to_string())?;
        let mut metrics = BTreeMap::new();
        for (name, m) in members {
            let value = m
                .get("value")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("metric `{name}`: missing `value`"))?;
            let unit = m
                .get("unit")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            let higher_is_better = m
                .get("higher_is_better")
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("metric `{name}`: missing `higher_is_better`"))?;
            let tolerance = m
                .get("tolerance")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("metric `{name}`: missing `tolerance`"))?;
            metrics.insert(
                name.clone(),
                Metric {
                    value,
                    unit,
                    higher_is_better,
                    tolerance,
                },
            );
        }
        Ok(Summary {
            area: area.to_string(),
            metrics,
        })
    }

    /// Writes `BENCH_<area>.json` into `dir`, returning the path. Errors
    /// are strings ready for stderr (the graceful path `reproduce` uses
    /// instead of panicking).
    pub fn write_to_dir(&self, dir: &Path) -> Result<PathBuf, String> {
        let path = dir.join(self.file_name());
        // Atomic (temp + fsync + rename) but unframed: BENCH files stay
        // plain JSON for every external consumer.
        let ctx = crate::durable::DurableCtx::disabled();
        let key = crate::durable::path_key(&path);
        crate::durable::write_atomic(&path, self.to_json().as_bytes(), &ctx, key)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(path)
    }

    /// Loads a summary from `path`.
    pub fn load(path: &Path) -> Result<Summary, String> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Summary::from_json(&src).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// One flagged regression from [`compare`].
#[derive(Clone, Debug)]
pub struct Regression {
    /// The area the metric belongs to.
    pub area: String,
    /// The metric name.
    pub metric: String,
    /// Baseline value (`None` when the metric vanished).
    pub baseline: f64,
    /// Current value (`None` renders as "missing").
    pub current: Option<f64>,
    /// The absolute slack the tolerance allowed.
    pub allowed: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.current {
            Some(cur) => write!(
                f,
                "{}/{}: {} -> {} (allowed slack {})",
                self.area,
                self.metric,
                fmt_f64(self.baseline),
                fmt_f64(cur),
                fmt_f64(self.allowed)
            ),
            None => write!(
                f,
                "{}/{}: baseline {} but the metric is missing from the current run",
                self.area,
                self.metric,
                fmt_f64(self.baseline)
            ),
        }
    }
}

/// Diffs `current` against `baseline`: every baseline metric must still
/// exist and must not have moved beyond its tolerance in the bad
/// direction. Metrics new in `current` are fine (the next baseline
/// refresh picks them up).
pub fn compare(baseline: &Summary, current: &Summary) -> Vec<Regression> {
    let mut out = Vec::new();
    for (name, base) in &baseline.metrics {
        let allowed = base.tolerance * base.value.abs().max(1.0);
        match current.metrics.get(name) {
            None => out.push(Regression {
                area: baseline.area.clone(),
                metric: name.clone(),
                baseline: base.value,
                current: None,
                allowed,
            }),
            Some(cur) => {
                let regressed = if base.higher_is_better {
                    cur.value < base.value - allowed
                } else {
                    cur.value > base.value + allowed
                };
                if regressed {
                    out.push(Regression {
                        area: baseline.area.clone(),
                        metric: name.clone(),
                        baseline: base.value,
                        current: Some(cur.value),
                        allowed,
                    });
                }
            }
        }
    }
    out
}

/// Lists the `BENCH_*.json` files directly inside `dir`, sorted by name.
pub fn list_bench_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            files.push(entry.path());
        }
    }
    files.sort();
    Ok(files)
}

/// Compares every baseline `BENCH_*.json` in `baseline_dir` against its
/// counterpart in `current_dir`. Returns the checked areas and the
/// regressions. A baseline file with no current counterpart is itself a
/// regression (the area stopped reporting).
pub fn compare_dirs(
    current_dir: &Path,
    baseline_dir: &Path,
) -> Result<(Vec<String>, Vec<Regression>), String> {
    let baselines = list_bench_files(baseline_dir)?;
    if baselines.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines in {} (run `reproduce all` first)",
            baseline_dir.display()
        ));
    }
    let mut checked = Vec::new();
    let mut regressions = Vec::new();
    for path in baselines {
        let base = Summary::load(&path)?;
        let file = base.file_name();
        let current_path = current_dir.join(&file);
        if !current_path.exists() {
            regressions.push(Regression {
                area: base.area.clone(),
                metric: "<file>".to_string(),
                baseline: base.metrics.len() as f64,
                current: None,
                allowed: 0.0,
            });
            checked.push(base.area);
            continue;
        }
        let current = Summary::load(&current_path)?;
        regressions.extend(compare(&base, &current));
        checked.push(base.area);
    }
    Ok((checked, regressions))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_summary(p99: f64, rps: f64) -> Summary {
        Summary::new("serve")
            .metric("p99_ms", p99, "ms", false, 0.5)
            .metric("throughput_rps", rps, "req/s", true, 0.5)
            .metric("bit_identical", 1.0, "bool", true, 0.0)
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let s = serve_summary(12.5, 800.0);
        let parsed = Summary::from_json(&s.to_json()).expect("round-trips");
        assert_eq!(parsed, s);
        assert_eq!(parsed.file_name(), "BENCH_serve.json");
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_shapes() {
        assert!(Summary::from_json("{}").is_err());
        assert!(
            Summary::from_json(r#"{"schema": "other/9", "area": "x", "metrics": {}}"#)
                .expect_err("schema")
                .contains("unsupported schema")
        );
        let no_tol = r#"{"schema": "seaice-bench/1", "area": "x",
            "metrics": {"m": {"value": 1, "higher_is_better": true}}}"#;
        assert!(Summary::from_json(no_tol)
            .expect_err("tolerance")
            .contains("tolerance"));
    }

    #[test]
    fn within_tolerance_and_improvements_pass() {
        let base = serve_summary(10.0, 800.0);
        // 1.4x latency is inside the 0.5 tolerance; throughput improved.
        assert!(compare(&base, &serve_summary(14.0, 1600.0)).is_empty());
        // A huge latency *improvement* is fine too.
        assert!(compare(&base, &serve_summary(0.1, 800.0)).is_empty());
    }

    #[test]
    fn doubled_latency_is_flagged() {
        let base = serve_summary(10.0, 800.0);
        let regs = compare(&base, &serve_summary(20.0, 800.0));
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "p99_ms");
        assert!(regs[0].to_string().contains("p99_ms"));
    }

    #[test]
    fn zero_tolerance_metrics_must_not_move() {
        let base = serve_summary(10.0, 800.0);
        let mut broken = serve_summary(10.0, 800.0);
        if let Some(m) = broken.metrics.get_mut("bit_identical") {
            m.value = 0.0;
        }
        let regs = compare(&base, &broken);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "bit_identical");
    }

    #[test]
    fn missing_metric_is_a_regression() {
        let base = serve_summary(10.0, 800.0);
        let mut gutted = serve_summary(10.0, 800.0);
        gutted.metrics.remove("throughput_rps");
        let regs = compare(&base, &gutted);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].current.is_none());
    }

    #[test]
    fn compare_dirs_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("obs_bench_{}", std::process::id()));
        let base_dir = dir.join("base");
        let cur_dir = dir.join("cur");
        std::fs::create_dir_all(&base_dir).expect("mkdir");
        std::fs::create_dir_all(&cur_dir).expect("mkdir");
        serve_summary(10.0, 800.0)
            .write_to_dir(&base_dir)
            .expect("write baseline");
        serve_summary(25.0, 800.0)
            .write_to_dir(&cur_dir)
            .expect("write current");
        let (checked, regs) = compare_dirs(&cur_dir, &base_dir).expect("compare");
        assert_eq!(checked, vec!["serve".to_string()]);
        assert_eq!(regs.len(), 1);
        // Same dir against itself: trivially clean.
        let (_, regs) = compare_dirs(&base_dir, &base_dir).expect("compare");
        assert!(regs.is_empty());
        // Empty baseline dir: a hard error, not a silent pass.
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).expect("mkdir");
        assert!(compare_dirs(&cur_dir, &empty).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
