//! The process-wide metrics registry: named counters, gauges, and
//! log-spaced latency histograms (the `seaice-metrics` histogram the
//! serving layer already trusts).
//!
//! The design center is *zero cost when disabled*: a disabled
//! [`Recorder`] hands out handles whose hot-path methods are a branch on
//! a `None` — no allocation, no lock, no atomic — so every deterministic
//! and bit-identity code path behaves byte-identically whether or not
//! observability is compiled in the call sites. Enabled handles are a
//! single relaxed atomic op (counters/gauges) or a short mutex hold
//! (histograms), cheap enough to leave on in production serving.
//!
//! Registries are keyed by `BTreeMap` so every rendering (Prometheus
//! text, JSON) is deterministically ordered.

use seaice_metrics::{LatencyHistogram, LatencySnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning: registry state is plain
/// data, valid at every instant, so a panicking peer cannot corrupt it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<LatencyHistogram>>>>,
}

/// A handle to the metrics registry. Cloning is cheap (an `Arc` bump);
/// all clones share the same named instruments.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// The no-op recorder: every instrument it hands out is inert.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A live recorder with an empty registry.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// Whether instruments from this recorder actually record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The named counter, created on first use. Names are dotted paths
    /// (`serve.requests.submitted`); the Prometheus rendering maps dots
    /// to underscores.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                lock(&inner.counters)
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// The named gauge (an `f64` cell), created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(
                lock(&inner.gauges)
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
            )
        }))
    }

    /// The named log-spaced latency histogram, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                lock(&inner.histograms)
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(Mutex::new(LatencyHistogram::new()))),
            )
        }))
    }

    /// Renders every registered instrument in the Prometheus text
    /// exposition format (version 0.0.4), deterministically ordered by
    /// name. Disabled recorders render an empty exposition.
    pub fn render_prometheus(&self) -> String {
        let Some(inner) = self.inner.as_ref() else {
            return String::new();
        };
        let mut out = String::new();
        for (name, cell) in lock(&inner.counters).iter() {
            let pname = prom_name(name);
            out.push_str(&format!("# TYPE {pname} counter\n"));
            out.push_str(&format!("{pname} {}\n", cell.load(Ordering::Relaxed)));
        }
        for (name, cell) in lock(&inner.gauges).iter() {
            let pname = prom_name(name);
            let v = f64::from_bits(cell.load(Ordering::Relaxed));
            out.push_str(&format!("# TYPE {pname} gauge\n"));
            out.push_str(&format!("{pname} {v}\n"));
        }
        for (name, cell) in lock(&inner.histograms).iter() {
            let pname = prom_name(name);
            let h = lock(cell);
            out.push_str(&format!("# TYPE {pname} histogram\n"));
            let mut cumulative = 0u64;
            for b in h.bucket_counts() {
                if b.count == 0 {
                    continue;
                }
                cumulative += b.count;
                out.push_str(&format!(
                    "{pname}_bucket{{le=\"{}\"}} {cumulative}\n",
                    b.upper_us
                ));
            }
            out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{pname}_sum {}\n", h.sum_us()));
            out.push_str(&format!("{pname}_count {}\n", h.count()));
        }
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map everything else
/// (the registry's dotted paths, mostly) to underscores.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// A monotonically increasing counter. Inert when obtained from a
/// disabled [`Recorder`].
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn incr(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 when inert).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-write-wins `f64` gauge. Inert when obtained from a disabled
/// [`Recorder`].
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current value (0.0 when inert).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// A shared log-spaced latency histogram. Inert when obtained from a
/// disabled [`Recorder`].
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<Mutex<LatencyHistogram>>>);

impl Histogram {
    /// Records one observation in microseconds.
    #[inline]
    pub fn record_us(&self, us: u64) {
        if let Some(cell) = &self.0 {
            lock(cell).record_us(us);
        }
    }

    /// A point-in-time summary (`None` when inert).
    pub fn snapshot(&self) -> Option<LatencySnapshot> {
        self.0.as_ref().map(|cell| lock(cell).snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instruments_are_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("x");
        c.incr(5);
        assert_eq!(c.get(), 0);
        let g = r.gauge("y");
        g.set(2.5);
        assert_eq!(g.get(), 0.0);
        let h = r.histogram("z");
        h.record_us(100);
        assert!(h.snapshot().is_none());
        assert_eq!(r.render_prometheus(), "");
    }

    #[test]
    fn named_instruments_are_shared_across_handles() {
        let r = Recorder::enabled();
        r.counter("a.b").incr(2);
        r.counter("a.b").incr(3);
        assert_eq!(r.clone().counter("a.b").get(), 5);
        r.gauge("g").set(1.5);
        assert_eq!(r.gauge("g").get(), 1.5);
        r.histogram("h").record_us(10);
        r.histogram("h").record_us(1000);
        let snap = r.histogram("h").snapshot().expect("enabled");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max_us, 1000);
    }

    #[test]
    fn prometheus_rendering_is_ordered_and_typed() {
        let r = Recorder::enabled();
        r.counter("serve.requests").incr(7);
        r.counter("a.first").incr(1);
        r.gauge("distrib.images_per_sec").set(42.5);
        r.histogram("serve.latency_us").record_us(3);
        let text = r.render_prometheus();
        // BTreeMap ordering: a.first before serve.requests.
        let a = text.find("a_first 1").expect("a.first rendered");
        let s = text.find("serve_requests 7").expect("counter rendered");
        assert!(a < s);
        assert!(text.contains("# TYPE serve_requests counter"));
        assert!(text.contains("# TYPE distrib_images_per_sec gauge"));
        assert!(text.contains("distrib_images_per_sec 42.5"));
        assert!(text.contains("# TYPE serve_latency_us histogram"));
        assert!(text.contains("serve_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("serve_latency_us_sum 3"));
        assert!(text.contains("serve_latency_us_count 1"));
    }

    #[test]
    fn concurrent_counting_loses_nothing() {
        let r = Recorder::enabled();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = r.counter("contended");
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("thread joins");
        }
        assert_eq!(r.counter("contended").get(), 4000);
    }
}
