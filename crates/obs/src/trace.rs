//! Structured tracing spans with Chrome `trace_event` export.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s (begin/end event pairs),
//! one-shot complete events, and instant markers. Events carry a
//! process-unique sequential thread id and the name of the enclosing
//! span (parent linkage), and are buffered in a process-wide sink until
//! [`export_chrome_json`] renders them in the Chrome `trace_event` JSON
//! format (`chrome://tracing` / Perfetto loadable).
//!
//! Timestamps come from a [`Clock`], not from `Instant::now` at the call
//! site: wall-time layers (serve, bench, CLI) use the shared
//! [`WallClock`], while deterministic layers (mapreduce, distrib) charge
//! spans to a [`ManualClock`] driven by their *simulated* time. That
//! split is what keeps `seaice-lint`'s `wallclock-in-deterministic-path`
//! rule intact: deterministic crates never read the wall clock, they
//! advance a counter.
//!
//! Like the metrics registry, a disabled tracer is free: every emit is a
//! branch on a `None`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A source of span timestamps, in microseconds from an arbitrary
/// per-process origin.
pub trait Clock: Send + Sync {
    /// The current time in microseconds.
    fn now_us(&self) -> u64;
}

/// Wall time, measured from a process-wide origin so every wall-clocked
/// tracer shares one timeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct WallClock;

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        let origin = ORIGIN.get_or_init(Instant::now);
        origin.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }
}

/// A hand-driven clock for deterministic layers: mapreduce and distrib
/// advance it by their already-computed simulated durations, so their
/// spans land on the simulated timeline without any wall-clock read.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A clock at t=0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `us` and returns the *new* time.
    pub fn advance_us(&self, us: u64) -> u64 {
        self.0.fetch_add(us, Ordering::Relaxed).saturating_add(us)
    }

    /// Jumps the clock to `us` (monotonicity is the caller's business).
    pub fn set_us(&self, us: u64) {
        self.0.store(us, Ordering::Relaxed);
    }

    /// Advances the clock to at least `us` (a monotone watermark) and
    /// returns the resulting time. Unlike [`set_us`](ManualClock::set_us)
    /// this never moves the clock backwards, so concurrent writers — e.g.
    /// parallel pipeline stages each publishing their own simulated
    /// completion time — converge on the maximum.
    pub fn advance_to_us(&self, us: u64) -> u64 {
        self.0.fetch_max(us, Ordering::Relaxed).max(us)
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One buffered trace event.
#[derive(Clone, Debug)]
struct TraceEvent {
    name: String,
    cat: &'static str,
    /// Chrome phase: `B`/`E` (span begin/end), `X` (complete), `i`
    /// (instant).
    ph: char,
    ts_us: u64,
    dur_us: Option<u64>,
    tid: u64,
    args: Vec<(String, String)>,
}

#[derive(Default)]
struct Sink {
    events: Mutex<Vec<TraceEvent>>,
}

static SINK: OnceLock<Arc<Sink>> = OnceLock::new();
static ORIGIN: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Process-unique sequential thread id (Chrome `tid`).
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Names of the open spans on this thread, innermost last — the
    /// parent linkage recorded on each begin event.
    static OPEN_SPANS: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn tid() -> u64 {
    TID.with(|t| *t)
}

/// Turns tracing on for the rest of the process (idempotent). Events are
/// only buffered after this call; [`Tracer`] handles created before it
/// stay disabled.
pub fn enable() {
    let _ = ORIGIN.get_or_init(Instant::now);
    let _ = SINK.get_or_init(|| Arc::new(Sink::default()));
}

/// Whether [`enable`] has been called.
pub fn enabled() -> bool {
    SINK.get().is_some()
}

/// A wall-clocked tracer (disabled until [`enable`] is called).
pub fn tracer() -> Tracer {
    Tracer {
        sink: SINK.get().cloned(),
        clock: Arc::new(WallClock),
    }
}

/// A tracer charging its events to `clock` instead of wall time — the
/// sanctioned route for deterministic layers. Shares the global sink.
pub fn tracer_with_clock(clock: Arc<dyn Clock>) -> Tracer {
    Tracer {
        sink: SINK.get().cloned(),
        clock,
    }
}

/// Emits trace events. Cheap to clone; a tracer with no sink is inert.
#[derive(Clone)]
pub struct Tracer {
    sink: Option<Arc<Sink>>,
    clock: Arc<dyn Clock>,
}

impl Tracer {
    /// A tracer that never records.
    pub fn disabled() -> Self {
        Tracer {
            sink: None,
            clock: Arc::new(WallClock),
        }
    }

    /// Whether events from this tracer reach the sink.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    fn push(&self, ev: TraceEvent) {
        if let Some(sink) = &self.sink {
            lock(&sink.events).push(ev);
        }
    }

    /// Opens a span; the returned guard emits the matching end event on
    /// drop. The begin event records the enclosing span's name as
    /// `parent`.
    pub fn span(&self, name: &str, cat: &'static str) -> SpanGuard {
        if self.sink.is_none() {
            return SpanGuard { tracer: None };
        }
        let parent = OPEN_SPANS.with(|s| s.borrow().last().cloned());
        OPEN_SPANS.with(|s| s.borrow_mut().push(name.to_string()));
        let mut args = Vec::new();
        if let Some(p) = parent {
            args.push(("parent".to_string(), p));
        }
        self.push(TraceEvent {
            name: name.to_string(),
            cat,
            ph: 'B',
            ts_us: self.clock.now_us(),
            dur_us: None,
            tid: tid(),
            args,
        });
        SpanGuard {
            tracer: Some((self.clone(), name.to_string())),
        }
    }

    /// Emits a complete (`X`) event covering `[start_us, start_us +
    /// dur_us)`. Useful when the interval was measured elsewhere (e.g. a
    /// queue wait stamped at enqueue, observed at dequeue).
    pub fn complete(&self, name: &str, cat: &'static str, start_us: u64, dur_us: u64) {
        self.complete_with_args(name, cat, start_us, dur_us, &[]);
    }

    /// [`complete`](Tracer::complete) with attached args (e.g. the task
    /// and executor indices of a mapreduce attempt).
    pub fn complete_with_args(
        &self,
        name: &str,
        cat: &'static str,
        start_us: u64,
        dur_us: u64,
        args: &[(&str, &str)],
    ) {
        if self.sink.is_none() {
            return;
        }
        self.push(TraceEvent {
            name: name.to_string(),
            cat,
            ph: 'X',
            ts_us: start_us,
            dur_us: Some(dur_us),
            tid: tid(),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// Emits a complete event ending at the clock's current time with
    /// duration `dur_us`.
    pub fn complete_ending_now(&self, name: &str, cat: &'static str, dur_us: u64) {
        if self.sink.is_none() {
            return;
        }
        let end = self.clock.now_us();
        self.complete(name, cat, end.saturating_sub(dur_us), dur_us);
    }

    /// Emits an instant marker (fault injections, generation rollovers).
    pub fn instant(&self, name: &str, cat: &'static str, args: &[(&str, &str)]) {
        if self.sink.is_none() {
            return;
        }
        self.push(TraceEvent {
            name: name.to_string(),
            cat,
            ph: 'i',
            ts_us: self.clock.now_us(),
            dur_us: None,
            tid: tid(),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }
}

/// RAII span handle from [`Tracer::span`]; emits the end event on drop.
pub struct SpanGuard {
    tracer: Option<(Tracer, String)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((tracer, name)) = self.tracer.take() {
            OPEN_SPANS.with(|s| {
                s.borrow_mut().pop();
            });
            tracer.push(TraceEvent {
                name,
                cat: "",
                ph: 'E',
                ts_us: tracer.clock.now_us(),
                dur_us: None,
                tid: tid(),
                args: Vec::new(),
            });
        }
    }
}

/// Renders every buffered event as Chrome `trace_event` JSON
/// (`{"traceEvents": [...]}`). Empty (but valid) when tracing was never
/// enabled.
pub fn export_chrome_json() -> String {
    let mut out = String::from("{\"traceEvents\": [");
    if let Some(sink) = SINK.get() {
        let events = lock(&sink.events);
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            out.push_str(&render_event(ev));
        }
        if !events.is_empty() {
            out.push('\n');
        }
    }
    out.push_str("]}\n");
    out
}

fn render_event(ev: &TraceEvent) -> String {
    let mut s = format!(
        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \"ts\": {}, \"pid\": 1, \"tid\": {}",
        crate::json::escape(&ev.name),
        crate::json::escape(if ev.cat.is_empty() { "span" } else { ev.cat }),
        ev.ph,
        ev.ts_us,
        ev.tid
    );
    if let Some(dur) = ev.dur_us {
        s.push_str(&format!(", \"dur\": {dur}"));
    }
    if ev.ph == 'i' {
        // Thread-scoped instant marker.
        s.push_str(", \"s\": \"t\"");
    }
    if !ev.args.is_empty() {
        s.push_str(", \"args\": {");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{}\": \"{}\"",
                crate::json::escape(k),
                crate::json::escape(v)
            ));
        }
        s.push('}');
    }
    s.push('}');
    s
}

/// Shape facts [`validate_chrome_trace`] reports about a trace file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events of any phase.
    pub events: usize,
    /// Matched begin/end pairs.
    pub span_pairs: usize,
    /// Complete (`X`) events.
    pub complete: usize,
    /// Instant (`i`) markers.
    pub instants: usize,
}

/// Validates Chrome `trace_event` JSON: parses, requires the
/// `traceEvents` array (or a bare event array), checks every event for
/// the required fields, and verifies begin/end events balance per
/// thread with matching names. Returns shape stats on success.
pub fn validate_chrome_trace(src: &str) -> Result<TraceStats, String> {
    let doc = crate::json::parse(src)?;
    let events = match doc.get("traceEvents").and_then(|v| v.as_arr()) {
        Some(events) => events,
        None => doc
            .as_arr()
            .ok_or_else(|| "expected a `traceEvents` array or a bare event array".to_string())?,
    };
    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    // Per-(pid, tid) stacks of open span names.
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> =
        std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing `name`"))?;
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        ev.get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing `ts`"))?;
        let pid = ev
            .get("pid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing `pid`"))? as u64;
        let tid = ev
            .get("tid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing `tid`"))? as u64;
        match ph {
            "B" => stacks.entry((pid, tid)).or_default().push(name.to_string()),
            "E" => {
                let open = stacks
                    .entry((pid, tid))
                    .or_default()
                    .pop()
                    .ok_or_else(|| format!("event {i}: `E` for `{name}` with no open span"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: `E` for `{name}` but innermost open span is `{open}`"
                    ));
                }
                stats.span_pairs += 1;
            }
            "X" => stats.complete += 1,
            "i" | "I" => stats.instants += 1,
            other => return Err(format!("event {i}: unsupported phase `{other}`")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "unbalanced trace: span `{open}` on pid {pid} tid {tid} never ends"
            ));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global, so every test shares it; tests assert
    // on their own events (found by name) rather than on totals.

    #[test]
    fn manual_clock_advance_to_is_a_monotone_watermark() {
        let c = ManualClock::new();
        assert_eq!(c.advance_to_us(50), 50);
        // Moving the watermark backwards is a no-op.
        assert_eq!(c.advance_to_us(10), 50);
        assert_eq!(c.now_us(), 50);
        assert_eq!(c.advance_to_us(80), 80);
        // advance_us still composes on top of the watermark.
        assert_eq!(c.advance_us(5), 85);
    }

    #[test]
    fn disabled_tracer_emits_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let _g = t.span("ghost.span", "test");
        t.instant("ghost.instant", "test", &[]);
        t.complete("ghost.complete", "test", 0, 5);
        drop(_g);
        // Whatever the sink holds, none of it is ours.
        assert!(!export_chrome_json().contains("ghost."));
    }

    #[test]
    fn spans_nest_balance_and_link_parents() {
        enable();
        let t = tracer();
        assert!(t.is_enabled());
        {
            let _outer = t.span("test.outer", "test");
            {
                let _inner = t.span("test.inner", "test");
            }
        }
        t.instant("test.marker", "test", &[("kind", "demo")]);
        t.complete_ending_now("test.wait", "test", 7);
        let json = export_chrome_json();
        assert!(json.contains("\"name\": \"test.outer\""));
        // Parent linkage: inner's begin event names outer.
        assert!(json.contains("\"parent\": \"test.outer\""));
        assert!(json.contains("\"kind\": \"demo\""));
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert!(stats.span_pairs >= 2);
        assert!(stats.instants >= 1);
        assert!(stats.complete >= 1);
    }

    #[test]
    fn manual_clock_times_do_not_touch_the_wall() {
        let clock = Arc::new(ManualClock::new());
        clock.set_us(1_000);
        assert_eq!(clock.now_us(), 1_000);
        assert_eq!(clock.advance_us(500), 1_500);
        enable();
        let t = tracer_with_clock(clock.clone());
        t.complete_ending_now("test.sim.attempt", "mapreduce", 500);
        let json = export_chrome_json();
        // The complete event starts at 1500 - 500 = 1000 on the simulated
        // timeline.
        assert!(json.contains(
            "\"name\": \"test.sim.attempt\", \"cat\": \"mapreduce\", \"ph\": \"X\", \"ts\": 1000"
        ));
    }

    #[test]
    fn validator_rejects_unbalanced_and_malformed_traces() {
        let unbalanced = r#"{"traceEvents": [
            {"name": "a", "cat": "x", "ph": "B", "ts": 1, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .expect_err("unbalanced")
            .contains("never ends"));

        let mismatched = r#"{"traceEvents": [
            {"name": "a", "cat": "x", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
            {"name": "b", "cat": "x", "ph": "E", "ts": 2, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate_chrome_trace(mismatched)
            .expect_err("mismatched")
            .contains("innermost open span"));

        let missing_field = r#"{"traceEvents": [{"name": "a", "ph": "B", "pid": 1, "tid": 1}]}"#;
        assert!(validate_chrome_trace(missing_field)
            .expect_err("missing ts")
            .contains("missing `ts`"));

        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"other\": 1}").is_err());
    }

    #[test]
    fn validator_accepts_balanced_multithread_traces() {
        let ok = r#"{"traceEvents": [
            {"name": "a", "cat": "x", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
            {"name": "c", "cat": "x", "ph": "B", "ts": 1, "pid": 1, "tid": 2},
            {"name": "a", "cat": "x", "ph": "E", "ts": 3, "pid": 1, "tid": 1},
            {"name": "c", "cat": "x", "ph": "E", "ts": 4, "pid": 1, "tid": 2},
            {"name": "w", "cat": "x", "ph": "X", "ts": 1, "dur": 2, "pid": 1, "tid": 3},
            {"name": "f", "cat": "x", "ph": "i", "ts": 2, "pid": 1, "tid": 3, "s": "t"}
        ]}"#;
        let stats = validate_chrome_trace(ok).expect("valid");
        assert_eq!(stats.events, 6);
        assert_eq!(stats.span_pairs, 2);
        assert_eq!(stats.complete, 1);
        assert_eq!(stats.instants, 1);
    }
}
