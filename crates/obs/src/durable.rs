//! Crash-consistent durable state: checksummed atomic file writes with
//! seeded IO fault injection (DESIGN.md §4.8).
//!
//! Every durable artifact in the workspace — U-Net checkpoints, elastic-
//! trainer epoch spills, stream-stage snapshots — goes through this
//! module instead of a bare `std::fs::write` (enforced by `seaice-lint`'s
//! `raw-fs-write-in-durable-path` rule). Two guarantees:
//!
//! * **Atomicity.** [`write_framed`]/[`write_atomic`] write to a
//!   temporary sibling, fsync it, then rename over the target. A crash
//!   at any instant leaves the target either the previous complete file
//!   or the new complete file — never a torn hybrid.
//! * **Integrity.** [`write_framed`] prefixes the payload with a
//!   [`MAGIC`] marker, its length, and a CRC32; [`read_framed`] verifies
//!   all three and refuses — loudly, with [`DurableError`] — to return a
//!   payload whose checksum does not match. Silent corruption (a
//!   bit-flip on disk) is always *detected*, never loaded. Files without
//!   the magic marker are passed through as legacy unframed payloads, so
//!   checkpoints written before this layer existed keep loading.
//!
//! Fault injection rides the workspace's seeded [`FaultPlan`]: four IO
//! sites ([`SITE_WRITE_TORN`], [`SITE_WRITE_BITFLIP`],
//! [`SITE_WRITE_ENOSPC`], [`SITE_READ_CORRUPT`]) let `bench::soakbench`
//! torture every persistence path reproducibly. Transient failures
//! retry under a bounded deterministic [`RetryPolicy`] whose backoff is
//! charged to a [`ManualClock`] when one is attached (simulated paths
//! never sleep the wall clock).

use crate::ManualClock;
use seaice_faults::{mix, FaultAction, FaultPlan};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Site fired once per write attempt. [`FaultAction::Panic`]: the
/// process "dies" after writing a prefix of the temp file (the rename
/// never happens, the target is untouched — exactly the crash the
/// atomic protocol defends against). [`FaultAction::Error`]: a
/// transient flake the [`RetryPolicy`] may retry.
pub const SITE_WRITE_TORN: &str = "io.write.torn";

/// Site fired once per write attempt: one bit of the framed bytes flips
/// before they hit the disk, and the write *reports success* — silent
/// media corruption that only the reader's checksum can catch.
pub const SITE_WRITE_BITFLIP: &str = "io.write.bitflip";

/// Site fired once per write attempt: the filesystem is full; the write
/// fails loudly and the target is untouched.
pub const SITE_WRITE_ENOSPC: &str = "io.write.enospc";

/// Site fired once per read: one bit of the buffer flips after the read
/// (a bad sector, a cosmic ray in the page cache); the frame checksum
/// must detect it.
pub const SITE_READ_CORRUPT: &str = "io.read.corrupt";

/// Frame marker: a file starting with these 8 bytes is checksummed.
pub const MAGIC: &[u8; 8] = b"SEAICE1\n";

/// Frame header size: magic + u64 payload length + u32 CRC32, all LE.
pub const HEADER_LEN: usize = 8 + 8 + 4;

/// Default ceiling on payload size — both what [`read_framed`] will
/// allocate for and what a frame's length field may claim. 256 MiB:
/// far above any real checkpoint here, far below an absurd mmap bomb.
pub const MAX_PAYLOAD_BYTES: u64 = 256 * 1024 * 1024;

/// Bounded deterministic retry for transient write failures.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts before giving up (1 = no retry).
    pub max_attempts: u32,
    /// Backoff charged between attempts, microseconds (doubled each
    /// retry). Charged to the attached [`ManualClock`] when present;
    /// never a wall-clock sleep.
    pub backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_us: 500,
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no retry — what soak legs use so every fault
    /// decision maps 1:1 to an observable outcome.
    pub fn once() -> Self {
        Self {
            max_attempts: 1,
            backoff_us: 0,
        }
    }
}

/// Everything a durable IO call needs: the fault plan to consult, an
/// optional simulated clock to charge backoff to, the retry policy, and
/// the payload-size ceiling.
#[derive(Clone, Debug)]
pub struct DurableCtx {
    /// Fault plan consulted at the four IO sites.
    pub faults: Arc<FaultPlan>,
    /// When present, retry backoff advances this clock instead of
    /// sleeping (deterministic simulated paths).
    pub clock: Option<Arc<ManualClock>>,
    /// Transient-failure retry policy.
    pub retry: RetryPolicy,
    /// Reject frames (and raw files) larger than this many payload bytes.
    pub max_payload: u64,
}

impl DurableCtx {
    /// The production default: no faults, default retry, default ceiling.
    pub fn disabled() -> Self {
        Self::with_faults(Arc::new(FaultPlan::disabled()))
    }

    /// A context consulting `faults` at the IO sites.
    pub fn with_faults(faults: Arc<FaultPlan>) -> Self {
        Self {
            faults,
            clock: None,
            retry: RetryPolicy::default(),
            max_payload: MAX_PAYLOAD_BYTES,
        }
    }

    /// Attaches a simulated clock for backoff charging (builder-style).
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<ManualClock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Overrides the retry policy (builder-style).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    fn charge_backoff(&self, attempt: u32) {
        let us = self.retry.backoff_us.saturating_mul(1 << attempt.min(16));
        if us == 0 {
            return;
        }
        match &self.clock {
            Some(c) => {
                c.advance_us(us);
            }
            // No simulated clock: yield rather than sleep — callers on
            // real filesystems retry immediately, tests stay fast.
            None => std::thread::yield_now(),
        }
    }
}

/// What went wrong in a durable IO call.
#[derive(Debug)]
pub enum DurableError {
    /// The underlying filesystem operation failed.
    Io {
        /// Target path.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// A write attempt "crashed" partway (injected torn write): the temp
    /// file holds a prefix, the target was never replaced.
    TornWrite {
        /// Target path.
        path: PathBuf,
        /// Bytes that made it to the temp file.
        written: usize,
        /// Bytes the full frame needed.
        total: usize,
    },
    /// A framed file whose payload does not hash to its recorded CRC32.
    ChecksumMismatch {
        /// Offending path.
        path: PathBuf,
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the payload actually on disk.
        actual: u32,
    },
    /// A file that starts with [`MAGIC`] but whose header or length is
    /// inconsistent (truncated frame, trailing garbage, absurd length).
    BadFrame {
        /// Offending path.
        path: PathBuf,
        /// What is wrong with it.
        why: String,
    },
    /// The file (or its claimed payload) exceeds the context's ceiling.
    TooLarge {
        /// Offending path.
        path: PathBuf,
        /// Observed or claimed size.
        len: u64,
        /// The ceiling it broke.
        max: u64,
    },
    /// The file is empty — never a valid durable artifact.
    Empty {
        /// Offending path.
        path: PathBuf,
    },
    /// Every retry of a transient failure was spent.
    RetriesExhausted {
        /// Target path.
        path: PathBuf,
        /// Attempts made.
        attempts: u32,
        /// The last transient error.
        last: String,
    },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "durable io on {}: {source}", path.display()),
            Self::TornWrite {
                path,
                written,
                total,
            } => write!(
                f,
                "torn write to {}: crashed after {written} of {total} bytes (target untouched)",
                path.display()
            ),
            Self::ChecksumMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {}: header says {expected:#010x}, payload hashes to {actual:#010x} — refusing corrupt state",
                path.display()
            ),
            Self::BadFrame { path, why } => {
                write!(f, "bad durable frame in {}: {why}", path.display())
            }
            Self::TooLarge { path, len, max } => write!(
                f,
                "implausibly large durable file {}: {len} bytes exceeds the {max}-byte ceiling",
                path.display()
            ),
            Self::Empty { path } => {
                write!(f, "empty durable file {}", path.display())
            }
            Self::RetriesExhausted {
                path,
                attempts,
                last,
            } => write!(
                f,
                "durable write to {} failed after {attempts} attempts: {last}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl DurableError {
    /// Converts into an `io::Error` with a faithful kind: plain IO
    /// failures keep their kind (`NotFound` stays `NotFound`), every
    /// corruption/validation variant becomes `InvalidData`.
    pub fn into_io(self) -> io::Error {
        match self {
            Self::Io { source, .. } => source,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// CRC32 (IEEE 802.3, reflected) of `bytes` — the same polynomial gzip
/// and PNG use, hand-rolled because the workspace vendors no checksum
/// crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Wraps `payload` in the durable frame: magic, LE length, LE CRC32,
/// payload.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a frame read from `path` and returns its payload slice.
/// `Ok(None)` means the bytes do not start with [`MAGIC`] — a legacy
/// unframed file the caller should use as-is.
///
/// # Errors
/// [`DurableError::BadFrame`] for structural damage,
/// [`DurableError::ChecksumMismatch`] when the payload does not hash to
/// its header CRC, [`DurableError::TooLarge`] when the claimed length
/// breaks `max_payload`.
pub fn unframe<'a>(
    bytes: &'a [u8],
    path: &Path,
    max_payload: u64,
) -> Result<Option<&'a [u8]>, DurableError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Ok(None);
    }
    if bytes.len() < HEADER_LEN {
        return Err(DurableError::BadFrame {
            path: path.to_path_buf(),
            why: format!("truncated header: {} bytes, need {HEADER_LEN}", bytes.len()),
        });
    }
    // seaice-lint: allow(panic-in-library) reason="bytes.len() >= HEADER_LEN (20) was checked above, so [8..16] is exactly 8 bytes"
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    if len > max_payload {
        return Err(DurableError::TooLarge {
            path: path.to_path_buf(),
            len,
            max: max_payload,
        });
    }
    // seaice-lint: allow(panic-in-library) reason="bytes.len() >= HEADER_LEN (20) was checked above, so [16..20] is exactly 4 bytes"
    let expected = u32::from_le_bytes(bytes[16..20].try_into().expect("4-byte slice"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != len {
        return Err(DurableError::BadFrame {
            path: path.to_path_buf(),
            why: format!(
                "length mismatch: header claims {len} payload bytes, file holds {}",
                payload.len()
            ),
        });
    }
    let actual = crc32(payload);
    if actual != expected {
        return Err(DurableError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected,
            actual,
        });
    }
    Ok(Some(payload))
}

/// A stable fault/retry key for `path`: FNV-1a of its file name. Callers
/// with a better natural key (epoch number, chunk index) should pass
/// that instead.
pub fn path_key(path: &Path) -> u64 {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Writes `payload` to `path` framed (checksummed) and atomically.
///
/// # Errors
/// See [`DurableError`]; on any error the target is either absent or the
/// previous complete file — never partial.
pub fn write_framed(
    path: &Path,
    payload: &[u8],
    ctx: &DurableCtx,
    key: u64,
) -> Result<(), DurableError> {
    write_with_retry(path, &frame(payload), ctx, key)
}

/// Writes raw `bytes` to `path` atomically, without framing — for
/// artifacts whose format must stay plain (BENCH_*.json, manifests) but
/// which still deserve the temp-fsync-rename protocol.
///
/// # Errors
/// See [`DurableError`]; atomicity as in [`write_framed`].
pub fn write_atomic(
    path: &Path,
    bytes: &[u8],
    ctx: &DurableCtx,
    key: u64,
) -> Result<(), DurableError> {
    write_with_retry(path, bytes, ctx, key)
}

fn write_with_retry(
    path: &Path,
    framed: &[u8],
    ctx: &DurableCtx,
    key: u64,
) -> Result<(), DurableError> {
    let attempts = ctx.retry.max_attempts.max(1);
    let mut last: Option<String> = None;
    for attempt in 0..attempts {
        // Decisions are pure in (site, key), so each retry varies the
        // key: a transient fault armed at attempt 0 does not refire
        // forever.
        let akey = mix(key, attempt as u64);
        match write_attempt(path, framed, ctx, akey) {
            Ok(()) => return Ok(()),
            Err(e) if is_transient(&e) => {
                last = Some(e.to_string());
                if attempt + 1 < attempts {
                    ctx.charge_backoff(attempt);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(DurableError::RetriesExhausted {
        path: path.to_path_buf(),
        attempts,
        last: last.unwrap_or_else(|| "unknown".to_string()),
    })
}

/// Only plain transient IO errors retry; torn writes and ENOSPC model a
/// crash / a full disk and must surface to the caller unchanged.
fn is_transient(e: &DurableError) -> bool {
    matches!(
        e,
        DurableError::Io { source, .. } if source.kind() == io::ErrorKind::Interrupted
    )
}

fn temp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "durable".to_string());
    name.push_str(".tmp");
    path.with_file_name(name)
}

fn write_attempt(
    path: &Path,
    framed: &[u8],
    ctx: &DurableCtx,
    akey: u64,
) -> Result<(), DurableError> {
    let io_err = |source: io::Error| DurableError::Io {
        path: path.to_path_buf(),
        source,
    };

    // Full filesystem: loud failure, target untouched.
    if fires(ctx, SITE_WRITE_ENOSPC, akey) {
        return Err(io_err(io::Error::other(format!(
            "injected ENOSPC writing {} (key {akey})",
            path.display()
        ))));
    }
    let tmp = temp_path(path);
    match ctx.faults.fire(SITE_WRITE_TORN, akey) {
        FaultAction::None => {}
        FaultAction::Delay(_) => ctx.charge_backoff(0),
        // Transient flake the retry policy may absorb.
        FaultAction::Error => {
            return Err(io_err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient write fault (key {akey})"),
            )));
        }
        // Torn write: the "process" dies after a prefix of the temp
        // file. The rename never happens; the previous target survives
        // intact.
        FaultAction::Panic => {
            let written = framed.len() / 2;
            let _ = fs::write(&tmp, &framed[..written]);
            return Err(DurableError::TornWrite {
                path: path.to_path_buf(),
                written,
                total: framed.len(),
            });
        }
    }

    // Silent media corruption: flip one deterministic payload bit, then
    // report success. Only the reader's CRC can catch this.
    let mut bytes = std::borrow::Cow::Borrowed(framed);
    if fires(ctx, SITE_WRITE_BITFLIP, akey) && framed.len() > HEADER_LEN {
        let body = framed.len() - HEADER_LEN;
        let bit = (mix(akey, 0xB17F) as usize) % (body * 8);
        let owned = bytes.to_mut();
        owned[HEADER_LEN + bit / 8] ^= 1 << (bit % 8);
    }

    let mut f = fs::File::create(&tmp).map_err(io_err)?;
    f.write_all(&bytes).map_err(io_err)?;
    // fsync before rename: the rename must never land pointing at data
    // still in flight.
    f.sync_all().map_err(io_err)?;
    drop(f);
    fs::rename(&tmp, path).map_err(io_err)
}

fn fires(ctx: &DurableCtx, site: &str, key: u64) -> bool {
    match ctx.faults.fire(site, key) {
        FaultAction::None => false,
        FaultAction::Delay(_) => {
            // Stragglers on durable paths charge the simulated clock.
            ctx.charge_backoff(0);
            false
        }
        FaultAction::Panic | FaultAction::Error => true,
    }
}

/// Reads `path`, applies the size guards, optionally injects read
/// corruption, and returns the verified payload. Framed files are
/// checksum-verified; files without [`MAGIC`] are returned whole
/// (legacy unframed acceptance).
///
/// # Errors
/// [`DurableError::Empty`]/[`TooLarge`](DurableError::TooLarge) from the
/// pre-read guards (checked against metadata, before any allocation),
/// [`DurableError::Io`] for filesystem failures (missing file stays
/// `NotFound`), and the [`unframe`] corruption taxonomy.
pub fn read_framed(path: &Path, ctx: &DurableCtx, key: u64) -> Result<Vec<u8>, DurableError> {
    let io_err = |source: io::Error| DurableError::Io {
        path: path.to_path_buf(),
        source,
    };
    let len = fs::metadata(path).map_err(io_err)?.len();
    if len == 0 {
        return Err(DurableError::Empty {
            path: path.to_path_buf(),
        });
    }
    if len > ctx.max_payload.saturating_add(HEADER_LEN as u64) {
        return Err(DurableError::TooLarge {
            path: path.to_path_buf(),
            len,
            max: ctx.max_payload,
        });
    }
    let mut bytes = fs::read(path).map_err(io_err)?;
    if fires(ctx, SITE_READ_CORRUPT, key) && !bytes.is_empty() {
        let bit = (mix(key, 0x5EAD) as usize) % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
    }
    match unframe(&bytes, path, ctx.max_payload)? {
        Some(payload) => Ok(payload.to_vec()),
        None => Ok(bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clock;
    use seaice_faults::FaultPlan;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seaice-durable-{tag}-{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_and_legacy_passthrough() {
        let d = tmpdir("roundtrip");
        let p = d.join("state.bin");
        let ctx = DurableCtx::disabled();
        write_framed(&p, b"hello polar ice", &ctx, 1).unwrap();
        assert_eq!(read_framed(&p, &ctx, 1).unwrap(), b"hello polar ice");
        // No stray temp file after a clean write.
        assert!(!temp_path(&p).exists());

        // A legacy unframed file comes back whole.
        let legacy = d.join("legacy.json");
        fs::write(&legacy, b"{\"x\":1}").unwrap();
        assert_eq!(read_framed(&legacy, &ctx, 0).unwrap(), b"{\"x\":1}");
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn corrupted_frames_are_always_detected() {
        let d = tmpdir("detect");
        let p = d.join("state.bin");
        let ctx = DurableCtx::disabled();
        write_framed(&p, b"some payload worth protecting", &ctx, 1).unwrap();
        let good = fs::read(&p).unwrap();

        // Flip every single bit of the payload in turn: every flip must
        // be detected (this is the "never silently loaded" claim).
        for bit in 0..(good.len() - HEADER_LEN) * 8 {
            let mut bad = good.clone();
            bad[HEADER_LEN + bit / 8] ^= 1 << (bit % 8);
            fs::write(&p, &bad).unwrap();
            let e = read_framed(&p, &ctx, 1).expect_err("flip must be detected");
            assert!(matches!(e, DurableError::ChecksumMismatch { .. }), "{e}");
        }

        // Truncated frame.
        fs::write(&p, &good[..good.len() - 3]).unwrap();
        let e = read_framed(&p, &ctx, 1).expect_err("truncation must be detected");
        assert!(matches!(e, DurableError::BadFrame { .. }), "{e}");

        // Truncated header.
        fs::write(&p, &good[..10]).unwrap();
        let e = read_framed(&p, &ctx, 1).expect_err("short header must be detected");
        assert!(matches!(e, DurableError::BadFrame { .. }), "{e}");

        // Empty file.
        fs::write(&p, b"").unwrap();
        let e = read_framed(&p, &ctx, 1).expect_err("empty must be rejected");
        assert!(matches!(e, DurableError::Empty { .. }), "{e}");

        // Absurd claimed length (header says 1 GiB payload).
        let mut bad = good.clone();
        bad[8..16].copy_from_slice(&(1u64 << 30).to_le_bytes());
        fs::write(&p, &bad).unwrap();
        let e = read_framed(&p, &ctx, 1).expect_err("absurd length must be rejected");
        assert!(matches!(e, DurableError::TooLarge { .. }), "{e}");

        // Missing file stays NotFound through into_io.
        let missing = d.join("missing.bin");
        let e = read_framed(&missing, &ctx, 1).expect_err("missing file");
        assert_eq!(e.into_io().kind(), io::ErrorKind::NotFound);
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn torn_write_leaves_previous_file_intact() {
        let d = tmpdir("torn");
        let p = d.join("state.bin");
        let ctx = DurableCtx::disabled();
        write_framed(&p, b"generation 1", &ctx, 7).unwrap();

        // Arm a torn write on the exact attempt key.
        let plan = Arc::new(FaultPlan::seeded(1).fail_keys(
            SITE_WRITE_TORN,
            &[mix(7, 0)],
            FaultAction::Panic,
        ));
        let torn_ctx = DurableCtx::with_faults(plan).with_retry(RetryPolicy::once());
        let e = write_framed(&p, b"generation 2", &torn_ctx, 7).expect_err("torn write");
        assert!(matches!(e, DurableError::TornWrite { .. }), "{e}");
        // The target still reads back as generation 1.
        assert_eq!(read_framed(&p, &ctx, 7).unwrap(), b"generation 1");
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn bitflip_write_succeeds_but_read_detects() {
        let d = tmpdir("bitflip");
        let p = d.join("state.bin");
        let plan = Arc::new(FaultPlan::seeded(2).fail_keys(
            SITE_WRITE_BITFLIP,
            &[mix(9, 0)],
            FaultAction::Panic,
        ));
        let ctx = DurableCtx::with_faults(plan).with_retry(RetryPolicy::once());
        // The write reports success — that is the point of silent
        // corruption.
        write_framed(&p, b"trusted bytes", &ctx, 9).unwrap();
        let e = read_framed(&p, &DurableCtx::disabled(), 9).expect_err("flip must be caught");
        assert!(matches!(e, DurableError::ChecksumMismatch { .. }), "{e}");
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn enospc_fails_loudly_and_read_corrupt_is_detected() {
        let d = tmpdir("enospc");
        let p = d.join("state.bin");
        write_framed(&p, b"v1", &DurableCtx::disabled(), 3).unwrap();

        let plan = Arc::new(FaultPlan::seeded(3).fail_keys(
            SITE_WRITE_ENOSPC,
            &[mix(3, 0)],
            FaultAction::Panic,
        ));
        let ctx = DurableCtx::with_faults(plan).with_retry(RetryPolicy::once());
        let e = write_framed(&p, b"v2", &ctx, 3).expect_err("ENOSPC must fail");
        assert!(e.to_string().contains("ENOSPC"), "{e}");
        assert_eq!(read_framed(&p, &DurableCtx::disabled(), 3).unwrap(), b"v1");

        // Read-side corruption: one flipped bit in the buffer.
        let plan =
            Arc::new(FaultPlan::seeded(4).fail_keys(SITE_READ_CORRUPT, &[3], FaultAction::Panic));
        let rctx = DurableCtx::with_faults(plan);
        let e = read_framed(&p, &rctx, 3).expect_err("read corruption must be detected");
        assert!(
            matches!(
                e,
                DurableError::ChecksumMismatch { .. } | DurableError::BadFrame { .. }
            ),
            "{e}"
        );
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn transient_errors_retry_and_charge_the_manual_clock() {
        let d = tmpdir("retry");
        let p = d.join("state.bin");
        // Transient channel: FaultAction::Error on the torn site for
        // attempt 0 only — attempt 1 succeeds.
        let plan = Arc::new(FaultPlan::seeded(5).fail_keys(
            SITE_WRITE_TORN,
            &[mix(11, 0)],
            FaultAction::Error,
        ));
        let clock = Arc::new(ManualClock::new());
        let ctx = DurableCtx::with_faults(plan)
            .with_clock(Arc::clone(&clock))
            .with_retry(RetryPolicy {
                max_attempts: 3,
                backoff_us: 250,
            });
        write_framed(&p, b"eventually", &ctx, 11).unwrap();
        assert_eq!(read_framed(&p, &ctx, 11).unwrap(), b"eventually");
        assert_eq!(clock.now_us(), 250, "one backoff must have been charged");

        // Exhaustion: armed on every attempt.
        let plan = Arc::new(FaultPlan::seeded(5).fail_keys(
            SITE_WRITE_TORN,
            &[mix(12, 0), mix(12, 1), mix(12, 2)],
            FaultAction::Error,
        ));
        let ctx = DurableCtx::with_faults(plan).with_retry(RetryPolicy {
            max_attempts: 3,
            backoff_us: 0,
        });
        let e = write_framed(&p, b"never", &ctx, 12).expect_err("must exhaust");
        assert!(matches!(e, DurableError::RetriesExhausted { .. }), "{e}");
        fs::remove_dir_all(&d).ok();
    }
}
