//! `seaice-obs` — the workspace's unified observability layer.
//!
//! Three pieces, all built on the same rule — *off by default, byte-for-
//! byte invisible when off*:
//!
//! * [`registry`]: a process-wide metrics registry of named counters,
//!   gauges, and `seaice-metrics` log-spaced histograms. Handles from a
//!   disabled [`Recorder`] are inert (`Option::None` inside — no atomics,
//!   no locks), so the engine-vs-sequential and chaos byte-identity
//!   guarantees hold unchanged. [`Recorder::render_prometheus`] serves
//!   the registry as Prometheus text exposition (the serve front door
//!   mounts it at `GET /metrics`).
//! * [`trace`]: structured spans with parent linkage and thread ids,
//!   buffered process-wide and exported as Chrome `trace_event` JSON.
//!   Timestamps come from a [`Clock`]: serve/bench use the shared
//!   [`WallClock`], mapreduce/distrib charge spans to a [`ManualClock`]
//!   advanced by their simulated time — so deterministic crates still
//!   never read the wall clock, and `seaice-lint`'s
//!   `wallclock-in-deterministic-path` rule keeps its teeth.
//! * [`bench`]: the `BENCH_<area>.json` perf-trajectory schema
//!   (`seaice-bench/1`), its writer, and the regression comparator
//!   behind `reproduce bench-check`.
//! * [`durable`]: crash-consistent persistence — checksummed atomic
//!   file writes with seeded IO fault injection — which every durable
//!   artifact in the workspace routes through (DESIGN.md §4.8).
//!
//! Enablement is process-global and one-way: call [`enable_metrics`] /
//! [`trace::enable`] at startup (the CLI does this behind `--metrics`-
//! style flags), *before* constructing the components to observe —
//! instruments are grabbed once at construction and stay inert if
//! created earlier.
#![forbid(unsafe_code)]

pub mod bench;
pub mod durable;
pub mod json;
pub mod registry;
pub mod trace;

pub use durable::{DurableCtx, DurableError, RetryPolicy};
pub use registry::{Counter, Gauge, Histogram, Recorder};
pub use trace::{Clock, ManualClock, SpanGuard, Tracer, WallClock};

use std::sync::OnceLock;

static METRICS: OnceLock<Recorder> = OnceLock::new();

/// Turns the process-wide metrics registry on (idempotent) and returns
/// it. Components constructed after this call record into it.
pub fn enable_metrics() -> Recorder {
    METRICS.get_or_init(Recorder::enabled).clone()
}

/// The process-wide recorder: the enabled registry if [`enable_metrics`]
/// has run, otherwise the inert [`Recorder::disabled`].
pub fn metrics() -> Recorder {
    METRICS.get().cloned().unwrap_or_default()
}

/// The process-wide wall-clocked tracer (inert until [`trace::enable`]).
pub fn tracer() -> Tracer {
    trace::tracer()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_metrics_flip_from_inert_to_shared() {
        // Note: enable_metrics is process-global, so this test covers
        // both sides by ordering within one test body.
        let before = metrics();
        let enabled = enable_metrics();
        assert!(enabled.is_enabled());
        enabled.counter("lib.test.counter").incr(3);
        assert_eq!(metrics().counter("lib.test.counter").get(), 3);
        // A handle grabbed before enablement stays inert: enablement is
        // "before construction", by design.
        if !before.is_enabled() {
            before.counter("lib.test.counter").incr(100);
            assert_eq!(metrics().counter("lib.test.counter").get(), 3);
        }
    }
}
